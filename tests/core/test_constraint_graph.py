"""Unit tests for the overlay constraint graph."""

import pytest

from repro.color import Color
from repro.core import ConstraintEdge, OverlayConstraintGraph, ScenarioType


def edge(u, v, stype, **kw):
    return ConstraintEdge.from_scenario(u, v, stype, **kw)


class TestStructure:
    def test_add_edges_reports_consistency(self):
        g = OverlayConstraintGraph()
        assert g.add_edges([edge(0, 1, ScenarioType.T1A)]) == []
        assert g.num_edges() == 1
        assert g.vertices == {0, 1}

    def test_multi_edges_allowed(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [edge(0, 1, ScenarioType.T1A), edge(0, 1, ScenarioType.T2A)]
        )
        assert g.num_edges() == 2
        assert len(g.edges_of(0)) == 2

    def test_isolated_vertex(self):
        g = OverlayConstraintGraph()
        g.add_vertex(9)
        assert 9 in g.vertices
        assert g.components() == [{9}]

    def test_odd_cycle_detected_incrementally(self):
        g = OverlayConstraintGraph()
        assert g.add_edges([edge(0, 1, ScenarioType.T1A)]) == []
        assert g.add_edges([edge(1, 2, ScenarioType.T1A)]) == []
        offenders = g.add_edges([edge(2, 0, ScenarioType.T1A)])
        assert len(offenders) == 1
        assert g.has_hard_odd_cycle()

    def test_merge_cut_resolves_odd_cycle(self):
        # The paper's flagship case: a 3-cycle where one edge is 1-b
        # (same-color, merge+cut) is two-colorable.
        g = OverlayConstraintGraph()
        assert g.add_edges([edge(0, 1, ScenarioType.T1A)]) == []
        assert g.add_edges([edge(1, 2, ScenarioType.T1A)]) == []
        assert g.add_edges([edge(2, 0, ScenarioType.T1B)]) == []
        assert not g.has_hard_odd_cycle()

    def test_remove_net_restores_consistency(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A), edge(1, 2, ScenarioType.T1A)])
        g.add_edges([edge(2, 0, ScenarioType.T1A)])  # odd cycle
        assert g.has_hard_odd_cycle()
        removed = g.remove_net(2)
        assert removed == 2
        assert not g.has_hard_odd_cycle()
        assert g.vertices == {0, 1}

    def test_remove_unknown_net(self):
        g = OverlayConstraintGraph()
        assert g.remove_net(42) == 0


class TestWouldViolate:
    def test_probe_does_not_mutate(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A), edge(1, 2, ScenarioType.T1A)])
        closing = [edge(2, 0, ScenarioType.T1A)]
        assert g.would_violate(closing)
        assert not g.has_hard_odd_cycle()  # unchanged
        assert g.num_edges() == 2

    def test_probe_consistent_edges(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A)])
        assert not g.would_violate([edge(1, 2, ScenarioType.T1A)])

    def test_probe_ignores_soft(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A), edge(1, 2, ScenarioType.T1A)])
        assert not g.would_violate([edge(2, 0, ScenarioType.T2A)])


class TestEvaluation:
    def test_evaluate_counts_overlay_and_hard(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A), edge(1, 2, ScenarioType.T2B)])
        good = {0: Color.CORE, 1: Color.SECOND, 2: Color.SECOND}
        ev = g.evaluate(good)
        assert ev.hard_violations == 0
        assert ev.overlay_units == 1  # 2-b SS base cost
        bad = {0: Color.CORE, 1: Color.CORE, 2: Color.CORE}
        ev_bad = g.evaluate(bad)
        assert ev_bad.hard_violations == 1
        assert not ev_bad.feasible

    def test_evaluate_counts_cut_risks(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T2A)])
        ev = g.evaluate({0: Color.CORE, 1: Color.SECOND})
        assert ev.cut_risks == 1

    def test_missing_color_defaults_to_core(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T3A)])
        ev = g.evaluate({})
        assert ev.overlay_units == 1  # CC costs one unit in 3-a

    def test_net_cost(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T3A), edge(1, 2, ScenarioType.T3A)])
        coloring = {0: Color.CORE, 1: Color.CORE, 2: Color.CORE}
        assert g.net_cost(1, coloring) == 2
        assert g.net_cost(0, coloring) == 1


class TestComponents:
    def test_components_split(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T2A), edge(2, 3, ScenarioType.T2A)])
        comps = g.components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_component_of(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T2A), edge(1, 2, ScenarioType.T3A)])
        assert g.component_of(0) == {0, 1, 2}

    def test_edges_within(self):
        g = OverlayConstraintGraph()
        e1 = edge(0, 1, ScenarioType.T2A)
        e2 = edge(1, 2, ScenarioType.T2A)
        g.add_edges([e1, e2])
        inside = g.edges_within({0, 1})
        assert len(inside) == 1
        assert inside[0].u == 0

"""Unit tests for constraint edges."""

import pytest

from repro.color import Color
from repro.core import ConstraintEdge, EdgeKind, HARD, ScenarioType
from repro.core.edges import CUT_VETO


class TestEdgeKinds:
    def test_kind_mapping_fig11(self):
        cases = {
            ScenarioType.T1A: EdgeKind.HARD_DIFF,
            ScenarioType.T1B: EdgeKind.HARD_SAME,
            ScenarioType.T3A: EdgeKind.SOFT_DIFF,
            ScenarioType.T2A: EdgeKind.SOFT_SAME,
            ScenarioType.T2B: EdgeKind.SOFT_SAME,
            ScenarioType.T3D: EdgeKind.SOFT_SAME,
            ScenarioType.T3B: EdgeKind.BOTH_SECOND,
            ScenarioType.T3C: EdgeKind.FORBID_CS,
        }
        for stype, kind in cases.items():
            edge = ConstraintEdge.from_scenario(0, 1, stype)
            assert edge.kind is kind

    def test_hardness(self):
        assert EdgeKind.HARD_DIFF.is_hard
        assert EdgeKind.HARD_SAME.is_hard
        assert not EdgeKind.SOFT_SAME.is_hard


class TestCosts:
    def test_pair_cost_1a(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T1A)
        assert edge.pair_cost(Color.CORE, Color.CORE) == HARD
        assert edge.pair_cost(Color.CORE, Color.SECOND) == 0

    def test_overlap_scaling(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T2A, overlap=4)
        assert edge.pair_cost(Color.CORE, Color.SECOND) == 8

    def test_dp_cost_applies_veto(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T2A)
        physical = edge.pair_cost(Color.CORE, Color.SECOND)
        dp = edge.dp_cost(Color.CORE, Color.SECOND)
        assert dp == physical + CUT_VETO
        assert edge.dp_cost(Color.CORE, Color.CORE) == 0

    def test_dp_cost_hard_stays_hard(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T1B)
        assert edge.dp_cost(Color.CORE, Color.SECOND) == HARD

    def test_has_cut_risk(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T2B)
        assert edge.has_cut_risk(Color.CORE, Color.SECOND)
        assert not edge.has_cut_risk(Color.SECOND, Color.CORE)

    def test_tip_owner_orientation_folded_in(self):
        edge = ConstraintEdge.from_scenario(
            0, 1, ScenarioType.T3C, a_is_tip_owner=False
        )
        # With B as tip owner the penalised pair becomes SC in (u, v) terms.
        assert edge.pair_cost(Color.SECOND, Color.CORE) == 1
        assert edge.pair_cost(Color.CORE, Color.SECOND) == 0
        assert edge.has_cut_risk(Color.SECOND, Color.CORE)


class TestStructure:
    def test_parity(self):
        assert ConstraintEdge.from_scenario(0, 1, ScenarioType.T1A).parity == 1
        assert ConstraintEdge.from_scenario(0, 1, ScenarioType.T1B).parity == 0
        with pytest.raises(ValueError):
            ConstraintEdge.from_scenario(0, 1, ScenarioType.T2A).parity

    def test_other(self):
        edge = ConstraintEdge.from_scenario(3, 7, ScenarioType.T2A)
        assert edge.other(3) == 7
        assert edge.other(7) == 3
        with pytest.raises(ValueError):
            edge.other(5)

    def test_spread_hard_is_infinite(self):
        assert ConstraintEdge.from_scenario(0, 1, ScenarioType.T1A).spread == HARD

    def test_spread_soft_is_finite_and_positive(self):
        edge = ConstraintEdge.from_scenario(0, 1, ScenarioType.T3A)
        assert 0 < edge.spread < HARD

    def test_spread_grows_with_overlap(self):
        small = ConstraintEdge.from_scenario(0, 1, ScenarioType.T3A, overlap=1)
        # T2A scales with overlap (veto dominates equally in both).
        a = ConstraintEdge.from_scenario(0, 1, ScenarioType.T2A, overlap=1)
        b = ConstraintEdge.from_scenario(0, 1, ScenarioType.T2A, overlap=9)
        assert b.spread >= a.spread >= small.spread

"""Unit tests for the rule-based cut-conflict analysis (type A / type B)."""

import pytest

from repro.color import Color
from repro.core import CutConflictChecker, ScenarioType
from repro.core.scenario_detect import DetectedScenario
from repro.geometry import Rect
from repro.rules import DesignRules


def cell_rect(x0, x1, y):
    """Footprint of a horizontal wire on track y, grid points x0..x1."""
    return Rect(x0, y, x1 + 1, y + 1)


def scenario(stype, net_a, net_b, rect_a, rect_b, layer=0, tip=True, overlap=1):
    return DetectedScenario(
        layer=layer,
        net_a=net_a,
        net_b=net_b,
        scenario=stype,
        a_is_tip_owner=tip,
        overlap=overlap,
        rect_a=rect_a,
        rect_b=rect_b,
    )


@pytest.fixture
def checker(rules):
    return CutConflictChecker(rules, num_layers=1)


class TestCriticalCutSynthesis:
    def test_1b_same_color_needs_cut(self, checker):
        sc = scenario(ScenarioType.T1B, 0, 1, cell_rect(0, 4, 0), cell_rect(5, 9, 0))
        cuts = checker.critical_cuts(sc, Color.CORE, Color.CORE)
        assert len(cuts) == 1
        cut = cuts[0].rect
        # Tips at 170 nm (end of net 0) and 190 nm (start of net 1): the
        # cut covers the 20 nm gap and is >= w_cut wide.
        assert cut.width >= checker.rules.w_cut
        assert cut.xlo <= 170 + checker.rules.d_overlap
        assert cut.xhi >= 190 - checker.rules.d_overlap

    def test_1b_different_colors_no_cut(self, checker):
        sc = scenario(ScenarioType.T1B, 0, 1, cell_rect(0, 4, 0), cell_rect(5, 9, 0))
        assert checker.critical_cuts(sc, Color.CORE, Color.SECOND) == []

    def test_2b_always_cut(self, checker):
        sc = scenario(ScenarioType.T2B, 0, 1, cell_rect(0, 4, 0), cell_rect(6, 9, 0))
        for ca, cb in [(Color.CORE, Color.CORE), (Color.SECOND, Color.SECOND)]:
            assert checker.critical_cuts(sc, ca, cb)

    def test_2a_flank_cut_only_when_mixed(self, checker):
        sc = scenario(
            ScenarioType.T2A, 0, 1, cell_rect(0, 9, 0), cell_rect(0, 9, 2)
        )
        assert checker.critical_cuts(sc, Color.CORE, Color.CORE) == []
        cuts = checker.critical_cuts(sc, Color.CORE, Color.SECOND)
        assert len(cuts) == 1
        # The flank cut runs along the core (net 0) pattern's north side.
        wire = checker.wire_rect_nm(cell_rect(0, 9, 0))
        assert cuts[0].rect.ylo >= wire.yhi - checker.rules.d_overlap

    def test_3a_cc_corner_cut(self, checker):
        sc = scenario(ScenarioType.T3A, 0, 1, cell_rect(0, 4, 0), cell_rect(5, 9, 1))
        assert checker.critical_cuts(sc, Color.CORE, Color.CORE)
        assert checker.critical_cuts(sc, Color.CORE, Color.SECOND) == []


class TestTypeBDetection:
    def test_flanked_wire_conflict(self, checker):
        """Fig. 16's situation: two tip cuts flank a short middle wire."""
        # Nets: 0 | 2 | 1 collinear (net 2 a single grid point), all the
        # same color -> two merge cuts 20 nm apart across net 2.
        mid = cell_rect(5, 5, 0)
        sc1 = scenario(ScenarioType.T1B, 2, 0, mid, cell_rect(0, 4, 0))
        sc2 = scenario(ScenarioType.T1B, 2, 1, mid, cell_rect(6, 9, 0))
        cuts1 = checker.critical_cuts(sc1, Color.CORE, Color.CORE)
        cuts2 = checker.critical_cuts(sc2, Color.CORE, Color.CORE)
        checker.register_net(0, [(0, checker.wire_rect_nm(cell_rect(0, 4, 0)))], [])
        checker.register_net(1, [(0, checker.wire_rect_nm(cell_rect(6, 9, 0)))], [])
        checker.register_net(
            2, [(0, checker.wire_rect_nm(mid))], cuts1 + cuts2
        )
        conflicts = checker.conflicts_with(cuts1 + cuts2)
        assert conflicts
        assert all(c.over_net == 2 for c in conflicts)

    def test_same_pair_cuts_merge(self, checker):
        """Cuts serving the same pattern pair never conflict."""
        a = cell_rect(0, 4, 0)
        b = cell_rect(5, 9, 0)
        sc = scenario(ScenarioType.T1B, 0, 1, a, b)
        cuts = checker.critical_cuts(sc, Color.CORE, Color.CORE)
        duplicate = checker.critical_cuts(sc, Color.SECOND, Color.SECOND)
        checker.register_net(0, [(0, checker.wire_rect_nm(a))], cuts)
        assert checker.conflicts_with(duplicate) == []

    def test_far_cuts_no_conflict(self, checker):
        a = cell_rect(0, 4, 0)
        b = cell_rect(5, 9, 0)
        c = cell_rect(20, 24, 0)
        d = cell_rect(25, 29, 0)
        cuts_ab = checker.critical_cuts(
            scenario(ScenarioType.T1B, 0, 1, a, b), Color.CORE, Color.CORE
        )
        cuts_cd = checker.critical_cuts(
            scenario(ScenarioType.T1B, 2, 3, c, d), Color.CORE, Color.CORE
        )
        checker.register_net(0, [], cuts_ab)
        assert checker.conflicts_with(cuts_cd) == []

    def test_violation_over_spacer_ignored(self, checker):
        """Two nearby cuts with no wire between them are harmless."""
        a = cell_rect(0, 4, 0)
        b = cell_rect(5, 9, 0)
        c = cell_rect(0, 4, 1)
        d = cell_rect(5, 9, 1)
        cuts_ab = checker.critical_cuts(
            scenario(ScenarioType.T1B, 0, 1, a, b), Color.CORE, Color.CORE
        )
        cuts_cd = checker.critical_cuts(
            scenario(ScenarioType.T1B, 2, 3, c, d), Color.SECOND, Color.SECOND
        )
        # No wires registered between the cuts: spacing violation region
        # holds no target -> ignorable per Ma et al.
        checker.register_net(0, [], cuts_ab)
        assert checker.conflicts_with(cuts_cd) == []


class TestRegistration:
    def test_remove_net_clears_cuts_and_wires(self, checker):
        a = cell_rect(0, 4, 0)
        sc = scenario(ScenarioType.T1B, 0, 1, a, cell_rect(5, 9, 0))
        cuts = checker.critical_cuts(sc, Color.CORE, Color.CORE)
        checker.register_net(0, [(0, checker.wire_rect_nm(a))], cuts)
        assert checker.cuts_of(0)
        checker.remove_net(0)
        assert checker.cuts_of(0) == []
        assert checker.all_cuts() == []

    def test_replace_net_cuts(self, checker):
        a = cell_rect(0, 4, 0)
        sc = scenario(ScenarioType.T1B, 0, 1, a, cell_rect(5, 9, 0))
        cuts = checker.critical_cuts(sc, Color.CORE, Color.CORE)
        checker.register_net(0, [], cuts)
        checker.replace_net_cuts(0, [])
        assert checker.cuts_of(0) == []

"""Unit tests for the parity union-find (hard odd-cycle detection)."""

import pytest

from repro.core import ParityUnionFind


class TestBasics:
    def test_singleton(self):
        uf = ParityUnionFind()
        uf.add("a")
        assert "a" in uf
        assert uf.find("a") == ("a", 0)

    def test_union_different(self):
        uf = ParityUnionFind()
        assert uf.union("a", "b", 1)
        assert uf.relation("a", "b") == 1

    def test_union_same(self):
        uf = ParityUnionFind()
        assert uf.union("a", "b", 0)
        assert uf.relation("a", "b") == 0

    def test_transitivity(self):
        uf = ParityUnionFind()
        uf.union("a", "b", 1)
        uf.union("b", "c", 1)
        assert uf.relation("a", "c") == 0  # different of different = same

    def test_relation_unrelated_raises(self):
        uf = ParityUnionFind()
        uf.add("a")
        uf.add("b")
        with pytest.raises(KeyError):
            uf.relation("a", "b")

    def test_invalid_parity(self):
        uf = ParityUnionFind()
        with pytest.raises(ValueError):
            uf.union("a", "b", 2)


class TestOddCycles:
    def test_triangle_of_diff_edges_is_odd(self):
        uf = ParityUnionFind()
        assert uf.union("a", "b", 1)
        assert uf.union("b", "c", 1)
        assert not uf.union("c", "a", 1)  # odd cycle

    def test_even_cycle_is_fine(self):
        uf = ParityUnionFind()
        assert uf.union("a", "b", 1)
        assert uf.union("b", "c", 1)
        assert uf.union("c", "d", 1)
        assert uf.union("d", "a", 1)  # length-4 cycle: consistent

    def test_mixed_parities_fig11g(self):
        # Fig. 11(g): four nets + a dummy, five hard edges, odd overall.
        # Same-color edges are parity 0 (dummy vertices folded in).
        uf = ParityUnionFind()
        assert uf.union("a", "b", 1)
        assert uf.union("b", "c", 0)  # same-color edge (with dummy)
        assert uf.union("c", "d", 1)
        assert not uf.union("d", "a", 1)  # total cycle parity 3: odd

    def test_redundant_consistent_edge(self):
        uf = ParityUnionFind()
        uf.union("a", "b", 1)
        assert uf.union("a", "b", 1)  # redundant, consistent
        assert not uf.union("a", "b", 0)  # contradiction

    def test_failed_union_leaves_structure_intact(self):
        uf = ParityUnionFind()
        uf.union("a", "b", 1)
        uf.union("b", "c", 1)
        assert not uf.union("a", "c", 1)
        # Relations unchanged.
        assert uf.relation("a", "c") == 0


class TestStructure:
    def test_components(self):
        uf = ParityUnionFind()
        uf.union("a", "b", 1)
        uf.union("c", "d", 0)
        uf.add("e")
        comps = uf.components()
        sizes = sorted(len(v) for v in comps.values())
        assert sizes == [1, 2, 2]

    def test_same_set(self):
        uf = ParityUnionFind()
        uf.union("a", "b", 1)
        assert uf.same_set("a", "b")
        assert not uf.same_set("a", "z")

    def test_from_edges(self):
        uf, ok = ParityUnionFind.from_edges([("a", "b", 1), ("b", "c", 1), ("a", "c", 0)])
        assert ok
        uf, ok = ParityUnionFind.from_edges([("a", "b", 1), ("b", "c", 1), ("a", "c", 1)])
        assert not ok

    def test_long_chain_parity(self):
        uf = ParityUnionFind()
        n = 200
        for i in range(n):
            assert uf.union(i, i + 1, 1)
        assert uf.relation(0, n) == n % 2
        # Path compression keeps find cheap and correct afterwards.
        assert uf.relation(0, n // 2) == (n // 2) % 2

"""Unit tests for the between-band geometry of cut-conflict detection."""

import pytest

from repro.core.cut_conflict import _between_region
from repro.geometry import Rect


class TestBetweenRegion:
    def test_vertical_facing(self):
        a = Rect(0, 0, 100, 20)
        b = Rect(20, 40, 80, 60)
        band = _between_region(a, b)
        assert band == Rect(20, 20, 80, 40)

    def test_horizontal_facing(self):
        a = Rect(0, 0, 20, 100)
        b = Rect(50, 10, 70, 90)
        band = _between_region(a, b)
        assert band == Rect(20, 10, 50, 90)

    def test_order_independent(self):
        a = Rect(0, 0, 100, 20)
        b = Rect(20, 40, 80, 60)
        assert _between_region(a, b) == _between_region(b, a)

    def test_diagonal_pairs_have_no_band(self):
        a = Rect(0, 0, 20, 20)
        b = Rect(40, 40, 60, 60)
        assert _between_region(a, b) is None

    def test_partial_projection_overlap(self):
        a = Rect(0, 0, 50, 10)
        b = Rect(30, 30, 90, 40)
        band = _between_region(a, b)
        assert band == Rect(30, 10, 50, 30)

    def test_band_width_equals_gap(self):
        a = Rect(0, 0, 100, 20)
        b = Rect(0, 45, 100, 60)
        band = _between_region(a, b)
        assert band.height == 25
        assert band.width == 100

"""Tests for the super-vertex (even-cycle) reduction inside color flipping.

The paper reduces even cycles of same-type hard edges into super vertices
(Fig. 12); our implementation contracts every hard-connected group via the
parity union-find. These tests exercise the contraction through the public
flipping API.
"""

import pytest

from repro.color import Color
from repro.core import ConstraintEdge, OverlayConstraintGraph, ScenarioType
from repro.core.color_flip import brute_force_coloring, flip_colors


def edge(u, v, stype, **kw):
    return ConstraintEdge.from_scenario(u, v, stype, **kw)


def dp_total(graph, coloring):
    return sum(
        e.dp_cost(coloring.get(e.u, Color.CORE), coloring.get(e.v, Color.CORE))
        for e in graph.edges
    )


class TestEvenCycles:
    def test_even_diff_cycle_consistent(self):
        """A 4-cycle of hard-different edges has exactly two colorings."""
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T1A),
                edge(2, 3, ScenarioType.T1A),
                edge(3, 0, ScenarioType.T1A),
            ]
        )
        colors = flip_colors(g)
        assert colors[0] == colors[2]
        assert colors[1] == colors[3]
        assert colors[0] != colors[1]

    def test_even_same_cycle_merges_to_one_unit(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1B),
                edge(1, 2, ScenarioType.T1B),
                edge(2, 3, ScenarioType.T1B),
                edge(3, 0, ScenarioType.T1B),
            ]
        )
        colors = flip_colors(g)
        assert len({colors[i] for i in range(4)}) == 1

    def test_soft_edge_inside_hard_component_prices_both_polarities(self):
        """A soft edge whose endpoints are hard-linked becomes a per-unit
        self cost; the DP must choose the cheaper polarity."""
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),  # hard-diff: unit of {0, 1}
                # 3-c between the two: with 0=C,1=S the (C,S) combo is
                # penalised; the mirrored polarity is free.
                edge(0, 1, ScenarioType.T3C),
            ]
        )
        colors = flip_colors(g)
        assert dp_total(g, colors) == 0
        assert colors[0] is Color.SECOND  # CS penalised -> pick SC

    def test_mixed_hard_chain_with_soft_leaves(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T1B),
                edge(2, 3, ScenarioType.T1A),
                edge(0, 3, ScenarioType.T1B),  # even overall: consistent
                edge(3, 4, ScenarioType.T3A),
                edge(4, 5, ScenarioType.T2A, overlap=3),
            ]
        )
        colors = flip_colors(g)
        _, best = brute_force_coloring(g, list(range(6)))
        assert dp_total(g, colors) == best

    def test_two_disjoint_hard_components_linked_by_soft(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(2, 3, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T2A, overlap=2),  # soft bridge
            ]
        )
        colors = flip_colors(g)
        assert colors[0] != colors[1]
        assert colors[2] != colors[3]
        assert colors[1] == colors[2]  # the soft-same bridge is honoured

"""Unit tests for greedy pseudo-coloring."""

from repro.color import Color
from repro.core import ConstraintEdge, OverlayConstraintGraph, ScenarioType
from repro.core.pseudo_color import pseudo_color


def edge(u, v, stype, **kw):
    return ConstraintEdge.from_scenario(u, v, stype, **kw)


class TestPseudoColor:
    def test_isolated_net_defaults_core(self):
        g = OverlayConstraintGraph()
        g.add_vertex(0)
        coloring = {}
        assert pseudo_color(g, 0, coloring) is Color.CORE
        assert coloring[0] is Color.CORE

    def test_respects_hard_diff_neighbour(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(1, 0, ScenarioType.T1A)])
        coloring = {0: Color.CORE}
        assert pseudo_color(g, 1, coloring) is Color.SECOND

    def test_respects_hard_same_neighbour(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(1, 0, ScenarioType.T1B)])
        coloring = {0: Color.SECOND}
        assert pseudo_color(g, 1, coloring) is Color.SECOND

    def test_avoids_cut_risk(self):
        # 2-a with neighbour CORE: choosing SECOND would be a vetoed CS.
        g = OverlayConstraintGraph()
        g.add_edges([edge(1, 0, ScenarioType.T2A)])
        coloring = {0: Color.CORE}
        assert pseudo_color(g, 1, coloring) is Color.CORE

    def test_weighs_multiple_neighbours(self):
        # Net 2 between a CORE 3-a neighbour (CC costs 1) and a CORE 2-a
        # neighbour (CS is vetoed): CORE wins overall.
        g = OverlayConstraintGraph()
        g.add_edges([edge(2, 0, ScenarioType.T3A), edge(2, 1, ScenarioType.T2A)])
        coloring = {0: Color.CORE, 1: Color.CORE}
        assert pseudo_color(g, 2, coloring) is Color.CORE

    def test_orientation_respected(self):
        # 3-c tabulated with A = tip owner, penalising CS. Edge (1, 0) with
        # net 1 as A: if 0 is SECOND, CORE for 1 is penalised -> SECOND.
        g = OverlayConstraintGraph()
        g.add_edges([edge(1, 0, ScenarioType.T3C)])
        coloring = {0: Color.SECOND}
        assert pseudo_color(g, 1, coloring) is Color.SECOND

"""Unit tests for the linear-time color flipping algorithm (Theorem 4)."""

import pytest

from repro.color import Color
from repro.core import ConstraintEdge, OverlayConstraintGraph, ScenarioType
from repro.core.color_flip import brute_force_coloring, flip_colors
from repro.errors import ColoringError


def edge(u, v, stype, **kw):
    return ConstraintEdge.from_scenario(u, v, stype, **kw)


def dp_total(graph, coloring):
    return sum(
        e.dp_cost(coloring.get(e.u, Color.CORE), coloring.get(e.v, Color.CORE))
        for e in graph.edges
    )


class TestHardConstraints:
    def test_hard_diff_respected(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A)])
        colors = flip_colors(g)
        assert colors[0] != colors[1]

    def test_hard_same_respected(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1B)])
        colors = flip_colors(g)
        assert colors[0] == colors[1]

    def test_chain_of_hard_edges(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T1B),
                edge(2, 3, ScenarioType.T1A),
            ]
        )
        colors = flip_colors(g)
        assert colors[0] != colors[1]
        assert colors[1] == colors[2]
        assert colors[2] != colors[3]

    def test_odd_cycle_raises(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T1A),
                edge(2, 0, ScenarioType.T1A),
            ]
        )
        with pytest.raises(ColoringError):
            flip_colors(g)

    def test_odd_cycle_decomposed_by_merge(self):
        # 1-a, 1-a, 1-b triangle: legal, with the 1-b pair same-colored.
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T1A),
                edge(2, 0, ScenarioType.T1B),
            ]
        )
        colors = flip_colors(g)
        assert colors[0] != colors[1]
        assert colors[1] != colors[2]
        assert colors[2] == colors[0]


class TestSoftOptimisation:
    def test_both_second_preference(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T3B)])
        colors = flip_colors(g)
        # SS is one of the zero-cost assignments for 3-b (CS also free);
        # the result must be a zero-cost assignment.
        assert dp_total(g, colors) == 0

    def test_soft_same_preference(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T2A, overlap=5)])
        colors = flip_colors(g)
        assert colors[0] == colors[1]

    def test_tree_optimality_matches_bruteforce(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T2A),
                edge(1, 2, ScenarioType.T3A),
                edge(1, 3, ScenarioType.T3C),
                edge(3, 4, ScenarioType.T2B),
            ]
        )
        ours = flip_colors(g)
        _, best_cost = brute_force_coloring(g, [0, 1, 2, 3, 4])
        assert dp_total(g, ours) == best_cost

    def test_tree_with_hard_edges_matches_bruteforce(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T2A),
                edge(2, 3, ScenarioType.T1B),
                edge(3, 4, ScenarioType.T3A),
            ]
        )
        ours = flip_colors(g)
        _, best_cost = brute_force_coloring(g, [0, 1, 2, 3, 4])
        assert dp_total(g, ours) == best_cost

    def test_cyclic_component_never_worse_than_bruteforce_on_tree(self):
        # Fig. 14's situation: B, C, E form a cycle; the max spanning tree
        # drops the least significant edge, and the refinement sweep keeps
        # the final cost at the brute-force optimum here.
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T2A, overlap=3),
                edge(1, 2, ScenarioType.T2A, overlap=2),
                edge(2, 0, ScenarioType.T3A),
                edge(2, 3, ScenarioType.T1A),
            ]
        )
        ours = flip_colors(g)
        _, best_cost = brute_force_coloring(g, [0, 1, 2, 3])
        assert dp_total(g, ours) == best_cost

    def test_scope_restricts_output(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T2A), edge(5, 6, ScenarioType.T2A)])
        colors = flip_colors(g, scope={0})
        assert set(colors) == {0, 1}

    def test_isolated_vertices_colored(self):
        g = OverlayConstraintGraph()
        g.add_vertex(7)
        colors = flip_colors(g)
        assert colors[7] in (Color.CORE, Color.SECOND)


class TestRefinement:
    def test_refine_improves_cycles(self):
        # Build a 4-cycle where the DP-on-tree alone could settle on a
        # suboptimal assignment of the dropped edge; refinement must land
        # at the brute-force optimum.
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T3A),
                edge(1, 2, ScenarioType.T3A),
                edge(2, 3, ScenarioType.T3A),
                edge(3, 0, ScenarioType.T3A),
                edge(0, 2, ScenarioType.T3D),
            ]
        )
        refined = flip_colors(g, refine=True)
        _, best = brute_force_coloring(g, [0, 1, 2, 3])
        assert dp_total(g, refined) == best

    def test_refine_flag_off_still_legal(self):
        g = OverlayConstraintGraph()
        g.add_edges([edge(0, 1, ScenarioType.T1A), edge(1, 2, ScenarioType.T2A)])
        colors = flip_colors(g, refine=False)
        assert colors[0] != colors[1]


class TestFlipCache:
    """The per-component result cache must be invisible to callers."""

    def _graph(self):
        g = OverlayConstraintGraph()
        g.add_edges(
            [
                edge(0, 1, ScenarioType.T1A),
                edge(1, 2, ScenarioType.T2A),
                edge(3, 4, ScenarioType.T3A),
            ]
        )
        return g

    def test_hit_matches_fresh_computation(self):
        g = self._graph()
        first = flip_colors(g)
        second = flip_colors(g)  # pure cache hits: nothing changed
        g.flip_cache_enabled = False
        uncached = flip_colors(g)
        assert first == second == uncached

    def test_mutation_invalidates(self):
        g = self._graph()
        flip_colors(g)
        # A structural change must bump the component version so the
        # stale entry is recomputed, not served.
        g.add_edges([edge(2, 5, ScenarioType.T1A)])
        cached = flip_colors(g)
        g.flip_cache_enabled = False
        fresh = flip_colors(g)
        assert cached == fresh
        assert cached[2] != cached[5]

    def test_remove_net_invalidates_neighbours(self):
        g = self._graph()
        flip_colors(g)
        g.remove_net(1)
        cached = flip_colors(g)
        g.flip_cache_enabled = False
        fresh = flip_colors(g)
        assert cached == fresh
        assert 1 not in cached

    def test_end_to_end_colors_bit_identical(self):
        # Full routed flow: cache on vs off must color identically.
        from repro.bench.workloads import generate_benchmark, spec_by_name
        from repro.router import SadpRouter

        for circuit, scale in (("Test1", 0.15), ("Test5", 0.06), ("Test6", 0.15)):
            grid, nets = generate_benchmark(spec_by_name(circuit), scale, seed=7)
            cached_router = SadpRouter(grid, nets)
            cached = cached_router.route_all()
            grid2, nets2 = generate_benchmark(spec_by_name(circuit), scale, seed=7)
            plain_router = SadpRouter(grid2, nets2)
            for graph in plain_router.graphs:
                graph.flip_cache_enabled = False
            plain = plain_router.route_all()
            assert cached_router.colorings == plain_router.colorings
            assert cached.overlay_units == plain.overlay_units

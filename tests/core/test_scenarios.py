"""Unit tests for the scenario table (Table II) and its invariants."""

import pytest

from repro.color import ALL_PAIRS, ColorPair
from repro.core import (
    HARD,
    SCENARIO_RULES,
    ScenarioType,
    scenario_for_relation,
)
from repro.core.relation import Direction2, GeometryRelation
from repro.core.scenarios import oriented_cost, table2_rows


def rel(along, across, direction, tip=True, overlap=1):
    return GeometryRelation(
        along=along,
        across=across,
        direction=direction,
        a_is_tip_owner=tip,
        overlap=overlap,
    )


class TestTaxonomy:
    def test_eleven_scenarios(self):
        assert len(ScenarioType) == 11
        assert len(SCENARIO_RULES) == 11

    def test_parallel_mapping(self):
        cases = {
            (0, 1): ScenarioType.T1A,
            (1, 0): ScenarioType.T1B,
            (0, 2): ScenarioType.T2A,
            (2, 0): ScenarioType.T2B,
            (1, 1): ScenarioType.T3A,
            (1, 2): ScenarioType.T3D,
            (2, 1): ScenarioType.T3E,
        }
        for (along, across), expected in cases.items():
            assert (
                scenario_for_relation(rel(along, across, Direction2.PARALLEL))
                is expected
            )

    def test_orthogonal_mapping(self):
        cases = {
            (0, 1): ScenarioType.T2C,
            (0, 2): ScenarioType.T2D,
            (1, 1): ScenarioType.T3B,
            (1, 2): ScenarioType.T3C,
        }
        for (along, across), expected in cases.items():
            assert (
                scenario_for_relation(rel(along, across, Direction2.ORTHOGONAL))
                is expected
            )

    def test_orthogonal_tuple_is_symmetric(self):
        assert scenario_for_relation(
            rel(2, 1, Direction2.ORTHOGONAL)
        ) is ScenarioType.T3C

    def test_unknown_relation_returns_none(self):
        assert scenario_for_relation(rel(3, 3, Direction2.PARALLEL)) is None


class TestColorRules:
    def test_1a_hard_pairs(self):
        rule = SCENARIO_RULES[ScenarioType.T1A]
        assert rule.hard_pairs == (ColorPair.CC, ColorPair.SS)
        assert rule.cost[ColorPair.CS] == 0

    def test_1b_hard_pairs(self):
        rule = SCENARIO_RULES[ScenarioType.T1B]
        assert rule.hard_pairs == (ColorPair.CS, ColorPair.SC)
        assert rule.cost[ColorPair.CC] == 0  # merge + cut makes same-color free

    def test_2b_never_free(self):
        rule = SCENARIO_RULES[ScenarioType.T2B]
        assert rule.min_cost == 1
        assert rule.base_cost == 1
        assert rule.max_finite_cost == 2

    def test_trivial_scenarios(self):
        for stype in (ScenarioType.T2C, ScenarioType.T2D, ScenarioType.T3E):
            assert SCENARIO_RULES[stype].is_trivial

    def test_non_trivial_scenarios(self):
        for stype in (ScenarioType.T1A, ScenarioType.T2A, ScenarioType.T3A):
            assert not SCENARIO_RULES[stype].is_trivial

    def test_3a_prefers_not_cc(self):
        rule = SCENARIO_RULES[ScenarioType.T3A]
        assert rule.cost[ColorPair.CC] == 1
        assert rule.min_cost == 0

    def test_3c_forbids_cs_only(self):
        rule = SCENARIO_RULES[ScenarioType.T3C]
        assert rule.cost[ColorPair.CS] == 1
        assert rule.cost[ColorPair.SC] == 0
        assert ColorPair.CS in rule.cut_risk

    def test_cut_risks(self):
        assert SCENARIO_RULES[ScenarioType.T2A].cut_risk == (
            ColorPair.CS,
            ColorPair.SC,
        )
        assert SCENARIO_RULES[ScenarioType.T2B].cut_risk == (ColorPair.CS,)


class TestOrientedCost:
    def test_overlap_scaling_for_flank_scenarios(self):
        rule = SCENARIO_RULES[ScenarioType.T2A]
        assert oriented_cost(rule, ColorPair.CS, True, overlap=5) == 10

    def test_hard_does_not_scale(self):
        rule = SCENARIO_RULES[ScenarioType.T1A]
        assert oriented_cost(rule, ColorPair.CC, True, overlap=7) == HARD

    def test_tip_owner_swap(self):
        rule = SCENARIO_RULES[ScenarioType.T3C]
        # Tabulated with A = tip owner: CS penalised.
        assert oriented_cost(rule, ColorPair.CS, True, 1) == 1
        # When B is the tip owner, the penalised pair flips to SC.
        assert oriented_cost(rule, ColorPair.SC, False, 1) == 1
        assert oriented_cost(rule, ColorPair.CS, False, 1) == 0


class TestTable2:
    def test_row_count(self):
        assert len(table2_rows()) == 11

    def test_trivial_rows_dashes(self):
        rows = {row[0]: row for row in table2_rows()}
        assert rows["2-c"][1:] == ("-", "-", "-")

    def test_hard_rows_marked(self):
        rows = {row[0]: row for row in table2_rows()}
        assert rows["1-a"][3] == "hard"
        assert rows["1-a"][1] == "CS/SC"

    def test_2b_row(self):
        rows = {row[0]: row for row in table2_rows()}
        assert rows["2-b"] == ("2-b", "CC/SS", "1", "2")

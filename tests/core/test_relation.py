"""Unit tests for geometry-relationship classification (Theorems 1-2).

Wire footprints are half-open cell rects in track coordinates; a wire on
track y spanning grid points x0..x1 has rect (x0, y, x1+1, y+1).
"""

import pytest

from repro.core import Direction2, classify_relation
from repro.geometry import Rect


def hwire(x0, x1, y):
    """Horizontal wire footprint covering grid points x0..x1 on track y."""
    return Rect(x0, y, x1 + 1, y + 1)


def vwire(y0, y1, x):
    return Rect(x, y0, x + 1, y1 + 1)


class TestParallelRelations:
    def test_adjacent_tracks_type_1a_tuple(self):
        rel = classify_relation(hwire(0, 9, 0), True, hwire(0, 9, 1), True)
        assert rel is not None
        assert (rel.along, rel.across) == (0, 1)
        assert rel.direction is Direction2.PARALLEL
        assert rel.overlap == 10

    def test_two_tracks_apart_type_2a(self):
        rel = classify_relation(hwire(0, 9, 0), True, hwire(3, 6, 2), True)
        assert (rel.along, rel.across) == (0, 2)
        assert rel.overlap == 4  # projection overlap only

    def test_tip_to_tip_type_1b(self):
        # Track difference 1 = abutting grid points (physical gap w_spacer).
        rel = classify_relation(hwire(0, 4, 0), True, hwire(5, 9, 0), True)
        assert (rel.along, rel.across) == (1, 0)
        assert rel.direction is Direction2.PARALLEL

    def test_tip_to_tip_two_apart_type_2b(self):
        rel = classify_relation(hwire(0, 4, 0), True, hwire(6, 9, 0), True)
        assert (rel.along, rel.across) == (2, 0)

    def test_vertical_pair_maps_to_same_canonical_tuple(self):
        h = classify_relation(hwire(0, 9, 0), True, hwire(0, 9, 1), True)
        v = classify_relation(vwire(0, 9, 0), False, vwire(0, 9, 1), False)
        assert (h.along, h.across) == (v.along, v.across) == (0, 1)

    def test_diagonal_1_1(self):
        rel = classify_relation(hwire(0, 4, 0), True, hwire(5, 9, 1), True)
        assert (rel.along, rel.across) == (1, 1)

    def test_diagonal_1_2_vs_2_1_distinguished(self):
        rel_a = classify_relation(hwire(0, 4, 0), True, hwire(5, 9, 2), True)
        assert (rel_a.along, rel_a.across) == (1, 2)
        rel_b = classify_relation(hwire(0, 4, 0), True, hwire(6, 9, 1), True)
        assert (rel_b.along, rel_b.across) == (2, 1)


class TestOrthogonalRelations:
    def test_tip_to_side(self):
        # Horizontal wire's tip one track from a vertical wire's flank.
        rel = classify_relation(hwire(0, 4, 0), True, vwire(-3, 3, 5), False)
        assert rel.direction is Direction2.ORTHOGONAL
        assert (rel.along, rel.across) == (0, 1)

    def test_sorted_tuple_identification(self):
        # (x, y, orth) == (y, x, orth): both orders give the same tuple.
        rel1 = classify_relation(hwire(0, 4, 0), True, vwire(2, 6, 5), False)
        rel2 = classify_relation(vwire(2, 6, 5), False, hwire(0, 4, 0), True)
        assert (rel1.along, rel1.across) == (rel2.along, rel2.across)

    def test_tip_owner_flag(self):
        # A's tip faces B's flank: A travels along itself (x) to reach B.
        rel = classify_relation(hwire(0, 4, 0), True, vwire(-3, 3, 6), False)
        assert rel.a_is_tip_owner
        rel_rev = classify_relation(vwire(-3, 3, 6), False, hwire(0, 4, 0), True)
        assert not rel_rev.a_is_tip_owner


class TestIndependence:
    def test_same_polygon_zero_zero(self):
        assert classify_relation(hwire(0, 4, 0), True, hwire(4, 9, 0), True) is None

    def test_aligned_beyond_three_tracks(self):
        assert classify_relation(hwire(0, 9, 0), True, hwire(0, 9, 3), True) is None
        assert classify_relation(hwire(0, 4, 0), True, hwire(8, 9, 0), True) is None

    def test_aligned_at_two_tracks_still_dependent(self):
        assert classify_relation(hwire(0, 9, 0), True, hwire(0, 9, 2), True) is not None

    def test_diagonal_2_2_independent(self):
        # Corner gap = sqrt(2) * 60 nm = d_indep exactly -> independent.
        assert classify_relation(hwire(0, 4, 0), True, hwire(6, 9, 2), True) is None

    def test_diagonal_1_2_dependent(self):
        assert classify_relation(hwire(0, 4, 0), True, hwire(5, 9, 2), True) is not None

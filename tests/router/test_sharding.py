"""Region sharding: plan geometry, determinism, and bit-identity.

The shard plan is a pure function of the netlist and die geometry, so it
must be identical across calls and worker counts; the sharded router's
committed results must be bit-identical to sequential routing for every
worker count, executor and seed — speculation that cannot be proven
consistent is discarded, never committed.
"""

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.router import SadpRouter
from repro.router.sharding import (
    OVERLAY_PAD,
    ShardGrid,
    assign_streams,
    choose_shard_grid,
    net_read_window,
    plan_shards,
    should_shard,
)

from .test_parallel import _route_signature


def _bench(scale=0.25, seed=2014, name="Test1"):
    return generate_benchmark(spec_by_name(name), scale=scale, seed=seed)


def _plan(nets, grid, router, **kwargs):
    ordered = list(nets.ordered_for_routing(router.order))
    return plan_shards(
        ordered,
        router.params.search_margin,
        grid.width,
        grid.height,
        **kwargs,
    )


class TestShardGrid:
    def test_every_cell_belongs_to_exactly_one_tile(self):
        grid = ShardGrid(50, 37, 3, 2)
        seen = {}
        for x in range(50):
            for y in range(37):
                sid = grid.shard_of(x, y)
                xlo, xhi, ylo, yhi = grid.tile_bounds(sid)
                assert xlo <= x <= xhi and ylo <= y <= yhi
                seen[sid] = True
        assert sorted(seen) == list(range(grid.shards))

    def test_shard_containing_straddle(self):
        grid = ShardGrid(40, 40, 2, 2)
        assert grid.shard_containing((0, 19, 0, 19)) == 0
        assert grid.shard_containing((20, 39, 20, 39)) == 3
        assert grid.shard_containing((10, 25, 0, 10)) is None

    def test_choose_grid_refuses_tiny_dies(self):
        # 3.2 * typical window of 20 = 64-wide tiles: a 100-track die
        # fits only one, so no tiling is offered.
        assert choose_shard_grid(100, 100, [20, 20, 20]) is None
        grid = choose_shard_grid(400, 400, [20, 20, 20])
        assert grid is not None
        assert grid.cols >= 2 and grid.rows >= 2


class TestPlan:
    def test_plan_is_deterministic(self):
        grid, nets = _bench()
        router = SadpRouter(grid, nets)
        a = _plan(nets, grid, router, force=True)
        b = _plan(nets, grid, router, force=True)
        assert a.to_dict() == b.to_dict()
        assert [n.net_id for n in a.boundary] == [n.net_id for n in b.boundary]
        for sid in a.interior:
            assert [n.net_id for n, _ in a.interior[sid]] == [
                n.net_id for n, _ in b.interior[sid]
            ]

    def test_interior_windows_fit_their_tile(self):
        grid, nets = _bench(scale=0.3)
        router = SadpRouter(grid, nets)
        plan = _plan(nets, grid, router, force=True)
        assert plan.grid is not None
        for sid, members in plan.interior.items():
            xlo, xhi, ylo, yhi = plan.grid.tile_bounds(sid)
            for net, win in members:
                assert xlo <= win[0] <= win[1] <= xhi
                assert ylo <= win[2] <= win[3] <= yhi
                # and the stored window is the net's real read region
                assert win == net_read_window(
                    net, router.params.search_margin, grid.width, grid.height
                )

    def test_read_window_includes_overlay_pad(self):
        grid, nets = _bench()
        router = SadpRouter(grid, nets)
        net = next(iter(nets))
        from repro.router.astar import search_window

        pts = [p for pin in (net.source, net.target) for p in pin.candidates]
        raw = search_window(
            pts, router.params.search_margin, grid.width, grid.height
        )
        win = net_read_window(
            net, router.params.search_margin, grid.width, grid.height
        )
        assert win[0] <= max(0, raw[0] - OVERLAY_PAD)
        assert win[1] >= min(grid.width - 1, raw[1] + OVERLAY_PAD)

    def test_plan_counts_add_up(self):
        grid, nets = _bench()
        router = SadpRouter(grid, nets)
        plan = _plan(nets, grid, router, force=True)
        assert plan.interior_nets + plan.boundary_nets == plan.nets == len(
            list(nets)
        )
        assert 0.0 <= plan.interior_fraction <= 1.0

    def test_should_shard_bars(self):
        grid, nets = _bench(scale=0.12)
        router = SadpRouter(grid, nets)
        # forced 2x2 on a tiny die: plan exists but cannot clear the bar
        plan = _plan(nets, grid, router, force=True)
        assert not should_shard(plan)


class TestStreamAssignment:
    def test_partition_is_invariant_across_worker_counts(self):
        grid, nets = _bench(scale=0.3)
        router = SadpRouter(grid, nets)
        plan = _plan(nets, grid, router, force=True)
        sids = sorted(plan.interior)
        for workers in (1, 2, 3, 4, 7):
            streams = assign_streams(plan, workers)
            flat = sorted(sid for stream in streams for sid in stream)
            assert flat == sids  # every shard exactly once
            assert len(streams) <= max(1, workers)
            for stream in streams:
                assert stream == sorted(stream)


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_sharded_inline_matches_sequential(self, seed):
        grid_s, nets_s = _bench(scale=0.25, seed=seed)
        seq = SadpRouter(grid_s, nets_s)
        want = _route_signature(seq.route_all(), seq)
        for workers in (1, 2, 4):
            grid_p, nets_p = _bench(scale=0.25, seed=seed)
            router = SadpRouter(
                grid_p,
                nets_p,
                workers=workers,
                shard="on",
                executor="serial",
            )
            got = _route_signature(router.route_all(), router)
            assert got == want, f"workers={workers} diverged"
            stats = router.parallel_stats
            assert stats is not None and stats.mode == "sharded"
            assert stats.interior_nets + stats.boundary_nets == len(
                list(nets_p)
            )

    def test_sharded_process_pool_matches_sequential(self):
        grid_s, nets_s = _bench(scale=0.3, seed=5)
        seq = SadpRouter(grid_s, nets_s)
        want = _route_signature(seq.route_all(), seq)
        grid_p, nets_p = _bench(scale=0.3, seed=5)
        router = SadpRouter(grid_p, nets_p, workers=2, shard="on")
        got = _route_signature(router.route_all(), router)
        assert got == want
        stats = router.parallel_stats
        assert stats is not None
        assert stats.executor == "shard-process"
        # at least some nets really came back from the pool, or every
        # one of them fell back (both are legal; the point is identity)
        assert stats.hits + stats.fallbacks == stats.interior_nets

    def test_worker_death_degrades_to_live_routing(self, monkeypatch):
        """A pool whose workers die before producing anything: every
        interior net must fall back to a live route and the committed
        result must still equal sequential."""
        import queue

        from repro.router import pool as pool_mod

        class DeadPool:
            kind = "process"

            def __init__(self, workers, start_method=None):
                self.workers = workers

            def submit(self, worker_index, task):
                pass

            def get(self, timeout):
                raise queue.Empty

            def dead_workers(self):
                return list(range(self.workers))

            def close(self):
                pass

        monkeypatch.setattr(pool_mod, "WorkerPool", DeadPool)
        grid_s, nets_s = _bench(scale=0.25, seed=9)
        seq = SadpRouter(grid_s, nets_s)
        want = _route_signature(seq.route_all(), seq)
        grid_p, nets_p = _bench(scale=0.25, seed=9)
        router = SadpRouter(grid_p, nets_p, workers=2, shard="on")
        got = _route_signature(router.route_all(), router)
        assert got == want
        stats = router.parallel_stats
        assert stats is not None
        assert stats.hits == 0
        assert stats.fallbacks == stats.interior_nets
        if stats.interior_nets:
            assert stats.fallback_reasons.get("worker_died") == (
                stats.interior_nets
            )

"""Tests for the wrong-way routing and net-ordering extensions."""

import pytest

from repro.errors import NetlistError, RoutingError
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import CostParams, SadpRouter
from repro.router.astar import AStarRouter, SearchRequest


class TestWrongWayRouting:
    def test_disabled_by_default(self):
        grid = RoutingGrid(20, 20)
        engine = AStarRouter(grid, CostParams())
        # Vertical move on the horizontal layer must use vias.
        found = engine.search(
            SearchRequest(0, [(0, Point(5, 5))], [(0, Point(5, 8))])
        )
        assert found.via_count >= 2

    def test_enabled_allows_jogs_without_vias(self):
        grid = RoutingGrid(20, 20)
        # Block the via layer completely: only wrong-way can succeed.
        grid.block(1, Rect(0, 0, 20, 20))
        grid.block(2, Rect(0, 0, 20, 20))
        engine = AStarRouter(grid, CostParams(wrong_way_factor=3.0))
        found = engine.search(
            SearchRequest(0, [(0, Point(5, 5))], [(0, Point(5, 8))]),
            extra_margin=5,
        )
        assert found is not None
        assert found.via_count == 0

    def test_wrong_way_is_penalised(self):
        grid = RoutingGrid(20, 20)
        engine = AStarRouter(grid, CostParams(wrong_way_factor=10.0))
        # With cheap vias available, the router still prefers them.
        found = engine.search(
            SearchRequest(0, [(0, Point(5, 5))], [(0, Point(5, 12))]),
            extra_margin=5,
        )
        assert found.via_count >= 2

    def test_factor_validation(self):
        with pytest.raises(RoutingError):
            CostParams(wrong_way_factor=-1)
        with pytest.raises(RoutingError):
            CostParams(wrong_way_factor=0.5)

    def test_full_flow_with_wrong_way(self):
        grid = RoutingGrid(24, 24)
        nets = Netlist(
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 8), Pin.at(20, 12)),
            ]
        )
        params = CostParams(wrong_way_factor=2.5)
        result = SadpRouter(grid, nets, params=params).route_all()
        assert result.routability == 1.0
        assert result.cut_conflicts == 0


class TestNetOrdering:
    def _nets(self):
        return Netlist(
            [
                Net(0, "long", Pin.at(0, 2), Pin.at(20, 2)),
                Net(1, "short", Pin.at(0, 8), Pin.at(3, 8)),
                Net(2, "mid", Pin.at(0, 14), Pin.at(10, 14)),
            ]
        )

    def test_hpwl_order(self):
        order = [n.name for n in self._nets().ordered_for_routing("hpwl")]
        assert order == ["short", "mid", "long"]

    def test_hpwl_desc_order(self):
        order = [n.name for n in self._nets().ordered_for_routing("hpwl_desc")]
        assert order == ["long", "mid", "short"]

    def test_id_order(self):
        order = [n.net_id for n in self._nets().ordered_for_routing("id")]
        assert order == [0, 1, 2]

    def test_random_is_seeded(self):
        a = [n.net_id for n in self._nets().ordered_for_routing("random", seed=7)]
        b = [n.net_id for n in self._nets().ordered_for_routing("random", seed=7)]
        c = [n.net_id for n in self._nets().ordered_for_routing("random", seed=8)]
        assert a == b
        assert sorted(a) == [0, 1, 2]
        assert a != c or True  # different seeds usually differ; no hard claim

    def test_unknown_strategy(self):
        with pytest.raises(NetlistError):
            self._nets().ordered_for_routing("voodoo")

    def test_router_accepts_order(self):
        grid = RoutingGrid(24, 24)
        result = SadpRouter(grid, self._nets(), order="hpwl_desc").route_all()
        assert result.routability == 1.0


class TestDesignFile:
    def test_block_directives(self, tmp_path):
        from repro.netlist import read_design

        path = tmp_path / "design.txt"
        path.write_text(
            "BLOCK * 4,4,8,8\n"
            "BLOCK L1 0,0,2,2\n"
            "n0 L0 0,9 -> L0 12,9\n"
        )
        blockages, nets = read_design(path)
        assert blockages == [(-1, Rect(4, 4, 8, 8)), (1, Rect(0, 0, 2, 2))]
        assert len(nets) == 1

    def test_malformed_block_rejected(self):
        from repro.netlist.io import parse_design

        with pytest.raises(NetlistError):
            parse_design("BLOCK L0 1,2,3\n")

    def test_cli_routes_around_blocks(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "design.txt"
        path.write_text(
            "BLOCK * 10,0,11,18\n"
            "n0 L0 2,5 -> L0 18,5\n"
        )
        rc = main(["route", str(path), "--width", "20", "--height", "20"])
        assert rc == 0
        assert "routed 1/1" in capsys.readouterr().out

"""Search-outcome reporting: budget exhaustion vs true unreachability."""

from repro import obs
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import AStarRouter, CostParams, SadpRouter, SearchRequest


def _request(src, dst, budget=None):
    req = SearchRequest(net_id=0, sources=[(0, src)], targets=[(0, dst)])
    if budget is not None:
        req.max_expansions = budget
    return req


class TestEngineOutcome:
    def test_found(self):
        engine = AStarRouter(RoutingGrid(20, 20), CostParams())
        assert engine.search(_request(Point(2, 5), Point(10, 5))) is not None
        assert engine.last_outcome == "found"

    def test_budget_exhausted(self):
        engine = AStarRouter(RoutingGrid(20, 20), CostParams())
        assert engine.search(_request(Point(0, 0), Point(19, 19), budget=3)) is None
        assert engine.last_outcome == "budget_exhausted"

    def test_unreachable_is_failed(self):
        grid = RoutingGrid(20, 20)
        for layer in range(3):
            grid.block(layer, Rect(10, 0, 11, 20))  # full wall
        engine = AStarRouter(grid, CostParams())
        found = engine.search(_request(Point(2, 5), Point(18, 5)), extra_margin=20)
        assert found is None
        assert engine.last_outcome == "failed"

    def test_counter_distinguishes_outcomes(self):
        with obs.session() as ob:
            engine = AStarRouter(RoutingGrid(20, 20), CostParams())
            engine.search(_request(Point(2, 5), Point(10, 5)))
            engine.search(_request(Point(0, 0), Point(19, 19), budget=3))
            reg = ob.registry
            assert reg.counter("astar_searches_total", outcome="found").value == 1
            assert (
                reg.counter(
                    "astar_searches_total", outcome="budget_exhausted"
                ).value
                == 1
            )
            assert reg.counter("astar_searches_total", outcome="failed").value == 0


def test_ripup_loop_doubles_budget_on_exhaustion():
    """A budget-starved net must get budget growth, not cell penalties."""
    grid = RoutingGrid(30, 30)
    nets = Netlist()
    nets.add(
        Net(
            net_id=0,
            name="n0",
            source=Pin(candidates=(Point(2, 2),), layer=0),
            target=Pin(candidates=(Point(25, 25),), layer=0),
        )
    )
    router = SadpRouter(grid, nets)
    route = router.route_net(nets.by_id(0))
    assert route.success  # sanity: routable with the default budget

    # Again with a starved budget: the loop doubles max_expansions until
    # the net fits, and never lays down rip-up penalties for it.
    grid2 = RoutingGrid(30, 30)
    nets2 = Netlist()
    nets2.add(
        Net(
            net_id=0,
            name="n0",
            source=Pin(candidates=(Point(2, 2),), layer=0),
            target=Pin(candidates=(Point(25, 25),), layer=0),
        )
    )
    router2 = SadpRouter(grid2, nets2)

    # Starve the first attempt by shrinking the request budget at search
    # time: wrap the engine's search once.
    original_search = router2.engine.search
    calls = {"n": 0, "budgets": []}

    def spy_search(request, extra_margin=0):
        if calls["n"] == 0:
            # the route needs ~650 expansions: one doubling rescues it
            request.max_expansions = 400
        calls["n"] += 1
        calls["budgets"].append(request.max_expansions)
        return original_search(request, extra_margin=extra_margin)

    router2.engine.search = spy_search
    route2 = router2.route_net(nets2.by_id(0))
    assert route2.success
    assert len(calls["budgets"]) >= 2
    assert calls["budgets"][1] == 800  # doubled after exhaustion
    assert not router2._penalties  # no cells were penalised for it

"""Compiled-kernel vs python fast-path equivalence.

The :mod:`repro.router.kernel` search loop must be *bit-identical* to
``_search_fast`` — same node sequences, same FP-exact costs, same
expansion/push/pop counters, same budget outcomes — whether numba
compiles it or the identity-decorated fallback runs it interpreted.
These tests pin that contract at the engine level (random occupancy,
penalties, budgets), end-to-end through SadpRouter (all guidance modes,
rip-up counters included), and through the worker-subproblem plumbing.
"""

import random

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router import AStarRouter, CostParams, SadpRouter, SearchRequest
from repro.router.kernel import (
    HAVE_NUMBA,
    kernel_backend_name,
    resolve_kernel,
)


def _random_occupancy(grid: RoutingGrid, rng: random.Random, fill: float) -> None:
    for layer in range(grid.num_layers):
        for x in range(grid.width):
            for y in range(grid.height):
                if rng.random() < fill:
                    grid.occupy(layer, Point(x, y), rng.randrange(1, 20))


def _engines(grid, params, **kwargs):
    py = AStarRouter(grid, params, kernel="python", **kwargs)
    kn = AStarRouter(grid, params, kernel="numba", **kwargs)
    return py, kn


def _assert_same(found_py, found_kn, py, kn):
    if found_py is None:
        assert found_kn is None
    else:
        assert found_kn is not None
        assert found_kn.nodes == found_py.nodes
        assert found_kn.cost == found_py.cost  # bit-exact, not approx
        assert found_kn.segments == found_py.segments
        assert found_kn.vias == found_py.vias
        assert found_kn.expansions == found_py.expansions
    assert kn._last_stats == py._last_stats
    assert kn.last_outcome == py.last_outcome


class TestKnobSemantics:
    def test_resolve_kernel(self):
        assert resolve_kernel("python") is False
        assert resolve_kernel("numba") is True
        assert resolve_kernel("auto") is HAVE_NUMBA
        with pytest.raises(ValueError):
            resolve_kernel("jit")

    def test_backend_name(self):
        expected = "numba" if HAVE_NUMBA else "interpreted"
        assert kernel_backend_name() == expected

    def test_sadp_router_rejects_unknown_mode(self):
        grid, nets = generate_benchmark(spec_by_name("Test1"), scale=0.1, seed=1)
        with pytest.raises(ValueError, match="kernel"):
            SadpRouter(grid, nets, kernel="jit")


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_occupancy_with_overlay_and_penalties(self, seed):
        rng = random.Random(seed)
        grid = RoutingGrid(28, 28)
        _random_occupancy(grid, rng, fill=0.12)
        penalties = {
            (rng.randrange(3), rng.randrange(28), rng.randrange(28)): rng.uniform(1, 9)
            for _ in range(40)
        }
        params = CostParams()
        py, kn = _engines(
            grid,
            params,
            penalty_map=penalties,
            overlay_terms=(params.gamma, params.delta_tip),
        )
        for net_id in (100, 101):
            py.active_net = kn.active_net = net_id
            for _ in range(6):
                src = Point(rng.randrange(28), rng.randrange(28))
                dst = Point(rng.randrange(28), rng.randrange(28))
                req = SearchRequest(
                    net_id=net_id, sources=[(0, src)], targets=[(0, dst)]
                )
                _assert_same(
                    py.search(req, extra_margin=4),
                    kn.search(req, extra_margin=4),
                    py,
                    kn,
                )

    @pytest.mark.parametrize("seed", [7, 8])
    def test_multi_candidate_pins(self, seed):
        rng = random.Random(seed)
        grid = RoutingGrid(24, 24)
        _random_occupancy(grid, rng, fill=0.08)
        params = CostParams()
        py, kn = _engines(
            grid, params, overlay_terms=(params.gamma, params.delta_tip)
        )
        py.active_net = kn.active_net = 50
        for _ in range(5):
            sources = [
                (0, Point(rng.randrange(24), rng.randrange(24))) for _ in range(3)
            ]
            targets = [
                (0, Point(rng.randrange(24), rng.randrange(24))) for _ in range(3)
            ]
            req = SearchRequest(net_id=50, sources=sources, targets=targets)
            _assert_same(
                py.search(req, extra_margin=3),
                kn.search(req, extra_margin=3),
                py,
                kn,
            )

    def test_wrong_way_jogs(self):
        grid = RoutingGrid(20, 20)
        params = CostParams(wrong_way_factor=2.0)
        py, kn = _engines(grid, params)
        req = SearchRequest(
            net_id=0, sources=[(0, Point(2, 2))], targets=[(0, Point(12, 9))]
        )
        _assert_same(py.search(req), kn.search(req), py, kn)

    @pytest.mark.parametrize("budget", [1, 3, 17])
    def test_budget_exhaustion_matches(self, budget):
        grid = RoutingGrid(20, 20)
        py, kn = _engines(grid, CostParams())
        req = SearchRequest(
            net_id=0, sources=[(0, Point(0, 0))], targets=[(0, Point(19, 19))]
        )
        req.max_expansions = budget
        assert py.search(req) is None
        assert kn.search(req) is None
        assert py.last_outcome == "budget_exhausted"
        assert kn.last_outcome == "budget_exhausted"
        assert kn._last_stats == py._last_stats

    def test_guidance_trigger_resume(self):
        """The kernel suspends at the guidance trigger, activates the map
        and resumes — the python closure does the same mid-loop; both
        must land on the identical committed path and counters."""
        grid = RoutingGrid(30, 30)
        py, kn = _engines(grid, CostParams(), guidance="auto")
        py.guidance_trigger = kn.guidance_trigger = 4
        py.guidance_min_cells = kn.guidance_min_cells = 0
        req = SearchRequest(
            net_id=0, sources=[(0, Point(1, 1))], targets=[(0, Point(25, 20))]
        )
        _assert_same(py.search(req), kn.search(req), py, kn)
        assert py.total_guided_searches == kn.total_guided_searches == 1


@pytest.mark.parametrize("guidance", ["off", "auto", "on"])
@pytest.mark.parametrize(
    "circuit,scale",
    [("Test1", 0.12), ("Test6", 0.12)],
    ids=["Test1-fixed-pins", "Test6-multi-candidate"],
)
def test_route_all_equivalence(circuit, scale, guidance):
    """Full-flow bit-identity: kernel="numba" commits exactly the routes,
    counters and rip-up outcomes of kernel="python", in every guidance
    mode."""
    spec = spec_by_name(circuit)
    grid_py, nets_py = generate_benchmark(spec, scale=scale, seed=2014)
    grid_kn, nets_kn = generate_benchmark(spec, scale=scale, seed=2014)
    router_py = SadpRouter(grid_py, nets_py, guidance=guidance, kernel="python")
    router_kn = SadpRouter(grid_kn, nets_kn, guidance=guidance, kernel="numba")

    res_py = router_py.route_all()
    res_kn = router_kn.route_all()

    assert res_kn.routes.keys() == res_py.routes.keys()
    for net_id in res_py.routes:
        a, b = res_py.routes[net_id], res_kn.routes[net_id]
        assert a.success == b.success, f"net {net_id} success diverged"
        assert a.segments == b.segments, f"net {net_id} path diverged"
        assert a.vias == b.vias, f"net {net_id} vias diverged"
        assert a.ripups == b.ripups, f"net {net_id} ripups diverged"
    assert res_kn.overlay_units == res_py.overlay_units
    assert res_kn.total_wirelength == res_py.total_wirelength
    assert res_kn.total_ripups == res_py.total_ripups
    # order-sensitive engine counters, not just end-state metrics
    assert router_kn.engine.total_searches == router_py.engine.total_searches
    assert router_kn.engine.total_expansions == router_py.engine.total_expansions
    assert (
        router_kn.engine.total_guided_searches
        == router_py.engine.total_guided_searches
    )
    assert (
        router_kn.engine.total_guidance_builds
        == router_py.engine.total_guidance_builds
    )


@pytest.mark.parametrize("executor", ["thread", "serial"])
def test_worker_subproblems_use_the_kernel(executor):
    """kernel= must survive the SearchSubproblem plumbing: a parallel run
    with kernel="numba" matches a sequential kernel="python" run."""
    spec = spec_by_name("Test1")
    grid_seq, nets_seq = generate_benchmark(spec, scale=0.12, seed=2014)
    grid_par, nets_par = generate_benchmark(spec, scale=0.12, seed=2014)
    seq = SadpRouter(grid_seq, nets_seq, kernel="python")
    par = SadpRouter(
        grid_par, nets_par, workers=2, executor=executor, kernel="numba"
    )
    assert par.engine.kernel == "numba"
    res_seq = seq.route_all()
    res_par = par.route_all()
    assert res_par.overlay_units == res_seq.overlay_units
    assert res_par.total_wirelength == res_seq.total_wirelength
    for net_id in res_seq.routes:
        assert (
            res_par.routes[net_id].segments == res_seq.routes[net_id].segments
        )
    assert par.engine.total_searches == seq.engine.total_searches
    assert par.engine.total_expansions == seq.engine.total_expansions

"""Unit tests for routing-result persistence."""

import json

import pytest

from repro.color import Color
from repro.errors import RoutingError
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter, load_result, save_result
from repro.router.io import SCHEMA_VERSION, result_from_dict, result_to_dict


@pytest.fixture
def routed():
    grid = RoutingGrid(24, 24)
    nets = Netlist(
        [
            Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
            Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
            Net(2, "c", Pin.at(4, 10), Pin.at(18, 16)),
        ]
    )
    return SadpRouter(grid, nets).route_all()


class TestRoundTrip:
    def test_save_and_load(self, routed, tmp_path):
        path = save_result(routed, tmp_path / "r.json")
        back = load_result(path)
        assert back.routability == routed.routability
        assert back.overlay_nm == routed.overlay_nm
        assert back.cut_conflicts == routed.cut_conflicts
        for net_id, route in routed.routes.items():
            twin = back.routes[net_id]
            assert twin.success == route.success
            assert twin.segments == route.segments
            assert twin.vias == route.vias

    def test_colorings_roundtrip(self, routed, tmp_path):
        path = save_result(routed, tmp_path / "r.json")
        back = load_result(path)
        assert back.colorings == routed.colorings

    def test_json_is_stable(self, routed, tmp_path):
        a = save_result(routed, tmp_path / "a.json").read_text()
        b = save_result(routed, tmp_path / "b.json").read_text()
        assert a == b

    def test_schema_is_written(self, routed):
        assert result_to_dict(routed)["schema"] == SCHEMA_VERSION

    def test_bad_schema_rejected(self, routed):
        data = result_to_dict(routed)
        data["schema"] = 999
        with pytest.raises(RoutingError):
            result_from_dict(data)

    def test_colors_serialised_as_letters(self, routed, tmp_path):
        path = save_result(routed, tmp_path / "r.json")
        raw = json.loads(path.read_text())
        values = {
            v for layer in raw["colorings"].values() for v in layer.values()
        }
        assert values <= {"C", "S"}

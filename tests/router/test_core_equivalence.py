"""Vector-core vs object-core equivalence, end to end.

``core="vector"`` swaps the constraint-graph/coloring/commit engine for
the SoA edge store, the vector scenario detector, and the batched grid
writes; ``core="object"`` keeps the one-object-per-edge reference. The
swap is a pure representation change, so the full route_all flow —
ripups, colorings, overlay accounting, cut-conflict elimination — must
be bit-identical between the two on every seeded instance.
"""

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.router import SadpRouter


def _route(circuit: str, scale: float, seed: int, core: str):
    spec = spec_by_name(circuit)
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    router = SadpRouter(grid, nets, core=core)
    return router.route_all()


def _route_signature(result):
    return sorted(
        (
            net_id,
            route.success,
            route.ripups,
            tuple(route.segments),
            tuple(route.vias),
        )
        for net_id, route in result.routes.items()
    )


class TestCoreEquivalenceEndToEnd:
    @pytest.mark.parametrize(
        "circuit,scale",
        [("Test1", 0.15), ("Test6", 0.15)],
    )
    @pytest.mark.parametrize("seed", [2014, 7])
    def test_route_all_bit_identical(self, circuit, scale, seed):
        obj = _route(circuit, scale, seed, core="object")
        vec = _route(circuit, scale, seed, core="vector")
        assert _route_signature(vec) == _route_signature(obj)
        assert vec.colorings == obj.colorings
        assert vec.overlay_units == obj.overlay_units
        assert vec.overlay_nm == obj.overlay_nm
        assert vec.hard_overlays == obj.hard_overlays
        assert vec.cut_conflicts == obj.cut_conflicts
        assert vec.total_ripups == obj.total_ripups
        assert vec.color_flips == obj.color_flips

    def test_core_knob_is_validated(self):
        spec = spec_by_name("Test1")
        grid, nets = generate_benchmark(spec, scale=0.06, seed=1)
        with pytest.raises(ValueError):
            SadpRouter(grid, nets, core="fancy")

"""Batched guidance builds, worker premaps, and guidance-cache counters.

``batched_future_cost_maps`` solves several windows' backward Dijkstra
in one block-diagonal csgraph call; with no finite edge crossing block
boundaries the distances are exactly the per-window ones, so the batch
must be ``array_equal`` to one :func:`future_cost_map` per item. The
parallel router pre-builds worker guidance maps through this batch path
— another bit-identity, including the guided-search counters. The
guidance memo in :class:`OverlayCostCache` reports hits, misses and
invalidations both as plain attributes and as ``repro.obs`` counters.
"""

import random

import numpy as np
import pytest

from repro import obs
from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router import SadpRouter
from repro.router.guidance import batched_future_cost_maps, future_cost_map
from repro.router.overlay_cache import OverlayCostCache


def _random_items(rng, count):
    items = []
    for _ in range(count):
        num_layers = rng.randrange(1, 4)
        wx = rng.randrange(2, 14)
        wy = rng.randrange(2, 14)
        passable = rng_random(rng, (num_layers, wx, wy)) > 0.25
        cost = np.round(rng_random(rng, (num_layers, wx, wy)) * 4.0, 3)
        targets = np.zeros(passable.shape, dtype=bool)
        free = np.argwhere(passable)
        if len(free) and rng.random() > 0.1:
            for row in free[: rng.randrange(1, 4)]:
                targets[tuple(row)] = True
        items.append((passable, cost, targets))
    return items


def rng_random(rng, shape):
    flat = np.array([rng.random() for _ in range(int(np.prod(shape)))])
    return flat.reshape(shape)


class TestBatchedBuilds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_per_item(self, seed):
        rng = random.Random(seed)
        items = _random_items(rng, rng.randrange(2, 7))
        horizontal = (True, False, True)
        alpha, beta, wrong_way = 1.0, 2.0, 2.0
        batched = batched_future_cost_maps(
            items, horizontal, alpha, beta, wrong_way
        )
        assert len(batched) == len(items)
        for (passable, cost, targets), got in zip(items, batched):
            want = future_cost_map(
                passable, cost, horizontal, alpha, beta, wrong_way, targets
            )
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert np.array_equal(got, want)  # bit-exact, inf included

    def test_same_shape_windows_share_one_call(self):
        """Same-shape windows group into one block-diagonal solve; the
        obs counters record one batch covering all of them."""
        rng = random.Random(3)
        shape = (2, 6, 6)
        items = []
        for _ in range(4):
            passable = rng_random(rng, shape) > 0.2
            cost = np.round(rng_random(rng, shape) * 3.0, 3)
            targets = np.zeros(shape, dtype=bool)
            free = np.argwhere(passable)
            targets[tuple(free[0])] = True
            items.append((passable, cost, targets))
        with obs.session() as ob:
            batched = batched_future_cost_maps(
                items, (True, False), 1.0, 2.0, 2.0
            )
            batches = ob.registry.total("guidance_batch_builds_total")
            maps = ob.registry.total("guidance_batched_maps_total")
        assert all(b is not None for b in batched)
        assert batches == 1.0
        assert maps == 4.0


@pytest.mark.parametrize("kernel", ["python", "numba"])
def test_parallel_premaps_match_sequential(kernel):
    """guidance="on" + workers: premaps built centrally via the batch
    path must leave results *and* guidance counters identical to the
    sequential run (a consumed premap still counts as a build)."""
    spec = spec_by_name("Test1")
    grid_seq, nets_seq = generate_benchmark(spec, scale=0.12, seed=2014)
    grid_par, nets_par = generate_benchmark(spec, scale=0.12, seed=2014)
    seq = SadpRouter(grid_seq, nets_seq, guidance="on", kernel=kernel)
    par = SadpRouter(
        grid_par,
        nets_par,
        guidance="on",
        kernel=kernel,
        workers=2,
        executor="thread",
    )
    res_seq = seq.route_all()
    res_par = par.route_all()
    assert res_par.overlay_units == res_seq.overlay_units
    assert res_par.total_wirelength == res_seq.total_wirelength
    for net_id in res_seq.routes:
        assert (
            res_par.routes[net_id].segments == res_seq.routes[net_id].segments
        )
    assert (
        par.engine.total_guided_searches == seq.engine.total_guided_searches
    )
    assert (
        par.engine.total_guidance_builds == seq.engine.total_guidance_builds
    )


class TestGuidanceCacheCounters:
    def _cache(self):
        grid = RoutingGrid(16, 16)
        return grid, OverlayCostCache(grid, 1.5, 0.5)

    def test_hits_and_misses(self):
        _, cache = self._cache()
        key = ((0, 5, 0, 5), b"\x01", None, "auto")
        with obs.session() as ob:
            assert cache.guidance_lookup(1, key) is None
            cache.guidance_store(1, (0, 5, 0, 5), key, [0.0])
            assert cache.guidance_lookup(1, key) == [0.0]
            assert cache.guidance_lookup(1, ("other",)) is None
            hits = ob.registry.total("guidance_cache_hits_total")
            misses = ob.registry.total("guidance_cache_misses_total")
        assert cache.guidance_hits == 1 and hits == 1.0
        assert cache.guidance_misses == 2 and misses == 2.0

    def test_invalidations(self):
        grid, cache = self._cache()
        key = ((0, 5, 0, 5), b"\x01", None, "auto")
        cache.guidance_store(1, (0, 5, 0, 5), key, [0.0])
        cache.guidance_store(2, (8, 14, 8, 14), key, [0.0])
        with obs.session() as ob:
            grid.occupy(0, Point(3, 3), 9)  # reaches net 1's window only
            invalidations = ob.registry.total(
                "guidance_cache_invalidations_total"
            )
        assert cache.guidance_invalidations == 1
        assert invalidations == 1.0
        assert cache.guidance_lookup(2, key) is not None
        assert cache.guidance_lookup(1, key) is None

    def test_counters_reach_the_ledger_registry(self):
        """End-to-end: a guidance="on" route records cache activity that
        ``record_run`` will pick up generically from the registry."""
        spec = spec_by_name("Test1")
        grid, nets = generate_benchmark(spec, scale=0.12, seed=2014)
        with obs.session() as ob:
            SadpRouter(grid, nets, guidance="on").route_all()
            names = {entry["metric"] for entry in ob.registry.snapshot()}
            misses = ob.registry.total("guidance_cache_misses_total")
        assert "guidance_cache_misses_total" in names
        assert misses > 0

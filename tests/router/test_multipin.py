"""Tests for the sequential-Steiner multi-pin extension."""

import pytest

from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter


def route(nets, size=30):
    grid = RoutingGrid(size, size)
    router = SadpRouter(grid, Netlist(nets))
    return grid, router.route_all()


class TestNetModel:
    def test_pin_count(self):
        net = Net(0, "t", Pin.at(0, 0), Pin.at(9, 0), taps=(Pin.at(5, 5),))
        assert net.pin_count == 3

    def test_half_perimeter_covers_taps(self):
        net = Net(0, "t", Pin.at(0, 0), Pin.at(4, 0), taps=(Pin.at(2, 9),))
        assert net.half_perimeter == 4 + 9

    def test_multi_candidate_includes_taps(self):
        net = Net(
            0,
            "t",
            Pin.at(0, 0),
            Pin.at(4, 0),
            taps=(Pin.multi((Point(2, 9), Point(3, 9))),),
        )
        assert net.is_multi_candidate


class TestRouting:
    def test_three_pin_net_connected(self):
        nets = [Net(0, "t", Pin.at(2, 10), Pin.at(20, 10), taps=(Pin.at(10, 16),))]
        grid, result = route(nets)
        assert result.routability == 1.0
        route0 = result.routes[0]
        # Tree must touch all three pins.
        cells = {(l, p) for l, p in grid.cells_of_net(0)}
        assert (0, Point(2, 10)) in cells
        assert (0, Point(20, 10)) in cells
        assert (0, Point(10, 16)) in cells
        # Branch shares the trunk: wirelength well below three separate runs.
        assert route0.wirelength < (18 + 6) + 14

    def test_tree_is_connected(self):
        nets = [
            Net(
                0,
                "t",
                Pin.at(2, 4),
                Pin.at(24, 4),
                taps=(Pin.at(6, 14), Pin.at(18, 20)),
            )
        ]
        grid, result = route(nets)
        assert result.routability == 1.0
        # Connectivity check: BFS over the net's cells (via = same (x, y)).
        cells = set(grid.cells_of_net(0))
        start = next(iter(cells))
        seen = {start}
        stack = [start]
        while stack:
            layer, p = stack.pop()
            neighbours = [
                (layer, Point(p.x + 1, p.y)),
                (layer, Point(p.x - 1, p.y)),
                (layer, Point(p.x, p.y + 1)),
                (layer, Point(p.x, p.y - 1)),
                (layer - 1, p),
                (layer + 1, p),
            ]
            for nxt in neighbours:
                if nxt in cells and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        assert seen == cells

    def test_multipin_still_conflict_free(self):
        nets = [
            Net(0, "t0", Pin.at(2, 8), Pin.at(22, 8), taps=(Pin.at(12, 14),)),
            Net(1, "t1", Pin.at(2, 9), Pin.at(22, 9), taps=(Pin.at(14, 3),)),
            Net(2, "p", Pin.at(2, 20), Pin.at(22, 20)),
        ]
        _, result = route(nets)
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0

    def test_unreachable_tap_fails_whole_net(self):
        nets = [Net(0, "t", Pin.at(2, 10), Pin.at(10, 10), taps=(Pin.at(29, 29),))]
        grid = RoutingGrid(30, 30)
        from repro.geometry import Rect

        # Wall off the tap corner on every layer.
        for layer in range(3):
            grid.block(layer, Rect(25, 25, 30, 26))
            grid.block(layer, Rect(25, 26, 26, 30))
        router = SadpRouter(grid, Netlist(nets))
        result = router.route_all()
        assert not result.routes[0].success


class TestIO:
    def test_text_roundtrip_with_taps(self, tmp_path):
        from repro.netlist import read_netlist, write_netlist
        from repro.netlist.io import parse_netlist

        nl = parse_netlist("t L0 1,1 -> L0 9,1 -> L0 5,8 -> L1 3,3\n")
        net = nl.by_name("t")
        assert len(net.taps) == 2
        assert net.taps[1].layer == 1
        path = tmp_path / "nets.txt"
        write_netlist(nl, path)
        back = read_netlist(path)
        assert back.by_name("t").taps == net.taps

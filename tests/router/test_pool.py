"""Shared-memory segment lifecycle and the persistent worker pool.

These tests pin the SHM contract the sharded router relies on: the
segment mirrors the grid occupancy exactly, generation stamps advance
only on refresh after a real change, close unlinks the segment (no
leaked ``/dev/shm`` entries), and a dead worker neither wedges ``close``
nor leaks the segment.
"""

import queue

import pytest

from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router.pool import (
    Attachment,
    InlineShardPool,
    ShardStreamTask,
    SharedGridDescriptor,
    SharedOccupancy,
    StreamDone,
    WorkerPool,
)
from repro.router.cost import CostParams


def _empty_task(desc) -> ShardStreamTask:
    return ShardStreamTask(
        descriptor=desc,
        tiles={},
        nets=[],
        die_width=desc.shape[1],
        die_height=desc.shape[2],
        horizontal=[True, False, True],
        params=CostParams(),
        overlay_terms=None,
    )


class TestSharedOccupancy:
    def test_attach_sees_the_exact_occupancy(self):
        grid = RoutingGrid(20, 20)
        grid.occupy(0, Point(3, 4), 7)
        shared = SharedOccupancy(grid)
        try:
            att = Attachment(shared.descriptor())
            assert att.generation() == shared.generation
            assert (att.occ == grid._occ).all()
            assert att.occ[0, 3, 4] == 7
            att.close()
        finally:
            shared.close()

    def test_refresh_bumps_generation_only_when_dirty(self):
        grid = RoutingGrid(20, 20)
        shared = SharedOccupancy(grid)
        try:
            gen = shared.generation
            assert shared.refresh() == gen  # clean: no bump
            grid.occupy(1, Point(5, 5), 42)
            assert shared.stale
            assert shared.refresh() == gen + 1
            att = Attachment(shared.descriptor())
            assert att.generation() == gen + 1
            assert att.occ[1, 5, 5] == 42
            att.close()
        finally:
            shared.close()

    def test_bulk_rewrite_marks_stale(self):
        # block() is a bulk rewrite: it signals on_grid_reset, not
        # per-cell changes
        from repro.geometry import Rect

        grid = RoutingGrid(16, 16)
        shared = SharedOccupancy(grid)
        try:
            shared.refresh()
            grid.block(0, Rect(2, 2, 6, 6))
            assert shared.stale
        finally:
            shared.close()

    def test_close_unlinks_and_is_idempotent(self):
        grid = RoutingGrid(12, 12)
        shared = SharedOccupancy(grid)
        desc = shared.descriptor()
        shared.close()
        shared.close()  # second close must be a no-op
        with pytest.raises(FileNotFoundError):
            Attachment(desc)

    def test_descriptor_roundtrip(self):
        grid = RoutingGrid(10, 14)
        shared = SharedOccupancy(grid)
        try:
            desc = shared.descriptor()
            assert isinstance(desc, SharedGridDescriptor)
            assert tuple(desc.shape) == grid._occ.shape
            assert desc.generation == shared.generation
        finally:
            shared.close()


class TestWorkerPool:
    def test_empty_stream_roundtrip(self):
        grid = RoutingGrid(16, 16)
        shared = SharedOccupancy(grid)
        pool = WorkerPool(1)
        try:
            pool.submit(0, _empty_task(shared.descriptor()))
            msg = pool.get(timeout=10.0)
            assert isinstance(msg, StreamDone)
            assert msg.worker == 0
        finally:
            pool.close()
            shared.close()

    def test_stale_generation_refused(self):
        grid = RoutingGrid(16, 16)
        shared = SharedOccupancy(grid)
        pool = InlineShardPool(1)
        try:
            desc = shared.descriptor()
            # a commit after the descriptor was taken: segment republished
            grid.occupy(0, Point(1, 1), 3)
            shared.refresh()
            stale_desc = SharedGridDescriptor(
                name=desc.name,
                shape=desc.shape,
                dtype=desc.dtype,
                generation=desc.generation,  # the old stamp
            )
            pool.submit(0, _empty_task(stale_desc))
            # zero nets: the stale stream still ends with its sentinel
            msg = pool.get(timeout=1.0)
            assert isinstance(msg, StreamDone)
        finally:
            pool.close()
            shared.close()

    def test_dead_worker_detected_and_close_does_not_hang(self):
        grid = RoutingGrid(16, 16)
        shared = SharedOccupancy(grid)
        pool = WorkerPool(2)
        try:
            assert pool.dead_workers() == []
            pool._procs[0].terminate()
            pool._procs[0].join(timeout=5.0)
            assert 0 in pool.dead_workers()
        finally:
            pool.close()  # must return promptly despite the corpse
            desc = shared.descriptor()
            shared.close()
        # the segment is gone even though a worker died attached to it
        with pytest.raises(FileNotFoundError):
            Attachment(desc)

    def test_inline_pool_get_raises_empty_when_drained(self):
        pool = InlineShardPool(1)
        with pytest.raises(queue.Empty):
            pool.get(timeout=0.1)

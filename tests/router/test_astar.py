"""Unit tests for the A* search engine."""

import pytest

from repro.errors import RoutingError
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.router import AStarRouter, CostParams, SearchRequest


@pytest.fixture
def grid():
    return RoutingGrid(20, 20)


@pytest.fixture
def engine(grid):
    return AStarRouter(grid, CostParams())


def request(net, src, dst, src_layer=0, dst_layer=0):
    return SearchRequest(
        net_id=net, sources=[(src_layer, src)], targets=[(dst_layer, dst)]
    )


class TestBasicSearch:
    def test_straight_route_same_track(self, engine):
        found = engine.search(request(0, Point(2, 5), Point(10, 5)))
        assert found is not None
        assert found.wirelength == 8
        assert found.via_count == 0
        assert len(found.segments) == 1

    def test_vertical_needs_layer_change(self, engine):
        # Layer 0 is horizontal: reaching a different y takes vias.
        found = engine.search(request(0, Point(5, 2), Point(5, 10)))
        assert found is not None
        assert found.via_count >= 2  # up to V-layer and back
        layers = {seg.layer for seg in found.segments}
        assert 1 in layers

    def test_l_shaped_route(self, engine):
        found = engine.search(request(0, Point(2, 2), Point(10, 10)))
        assert found is not None
        assert found.wirelength == 16  # Manhattan optimal

    def test_source_equals_target(self, engine):
        found = engine.search(request(0, Point(4, 4), Point(4, 4)))
        assert found is not None
        assert found.wirelength == 0

    def test_multi_candidate_picks_best(self, engine):
        req = SearchRequest(
            net_id=0,
            sources=[(0, Point(0, 5)), (0, Point(8, 5))],
            targets=[(0, Point(10, 5)), (0, Point(19, 19))],
        )
        found = engine.search(req)
        assert found is not None
        assert found.wirelength == 2  # (8,5) -> (10,5)


class TestObstacles:
    def test_routes_around_blockage(self, grid, engine):
        grid.block(0, Rect(5, 0, 6, 20))
        grid.block(1, Rect(5, 0, 6, 20))
        grid.block(2, Rect(5, 0, 6, 20))
        found = engine.search(request(0, Point(2, 5), Point(10, 5)), extra_margin=20)
        assert found is None  # full wall across all layers

    def test_routes_over_blockage_via_other_layer(self, grid, engine):
        grid.block(0, Rect(5, 0, 6, 20))  # wall on layer 0 only
        found = engine.search(request(0, Point(2, 5), Point(10, 5)), extra_margin=10)
        assert found is not None
        assert found.via_count >= 2

    def test_own_cells_are_passable(self, grid, engine):
        for x in range(3, 8):
            grid.occupy(0, Point(x, 5), 0)
        found = engine.search(request(0, Point(2, 5), Point(10, 5)))
        assert found is not None
        assert found.wirelength == 8

    def test_other_net_cells_block(self, grid, engine):
        for x in range(0, 20):
            grid.occupy(0, Point(x, 5), 99)
            grid.occupy(1, Point(x, 5), 99)
            grid.occupy(2, Point(x, 5), 99)
        found = engine.search(request(0, Point(2, 5), Point(10, 5)))
        assert found is None  # source itself unavailable

    def test_blocked_target_fails(self, grid, engine):
        grid.occupy(0, Point(10, 5), 99)
        found = engine.search(request(0, Point(2, 5), Point(10, 5)))
        assert found is None


class TestCostShaping:
    def test_penalty_diverts_path(self, grid):
        penalties = {(0, x, 5): 10.0 for x in range(4, 9)}
        engine = AStarRouter(
            grid,
            CostParams(),
            penalty=lambda l, p: penalties.get((l, p.x, p.y), 0.0),
        )
        found = engine.search(request(0, Point(2, 5), Point(10, 5)), extra_margin=10)
        assert found is not None
        on_track = [n for n in found.nodes if n[0] == 0 and n[2] == 5 and 4 <= n[1] < 9]
        assert not on_track  # detoured around the penalised stretch

    def test_overlay_cost_steers(self, grid):
        expensive = {(0, 6, 5)}
        engine = AStarRouter(
            grid,
            CostParams(),
            overlay_cost=lambda l, p: 50.0 if (l, p.x, p.y) in expensive else 0.0,
        )
        found = engine.search(request(0, Point(2, 5), Point(10, 5)), extra_margin=10)
        assert (0, 6, 5) not in found.nodes

    def test_expansion_budget(self, grid, engine):
        req = request(0, Point(0, 0), Point(19, 19))
        req.max_expansions = 3
        assert engine.search(req) is None


class TestRequestValidation:
    def test_empty_sources_rejected(self):
        with pytest.raises(RoutingError):
            SearchRequest(net_id=0, sources=[], targets=[(0, Point(0, 0))])

    def test_out_of_bounds_candidates_skipped(self, engine):
        req = SearchRequest(
            net_id=0,
            sources=[(0, Point(-5, 0)), (0, Point(2, 5))],
            targets=[(0, Point(10, 5))],
        )
        assert engine.search(req) is not None

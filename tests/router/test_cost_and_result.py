"""Unit tests for cost parameters and result records."""

import pytest

from repro.errors import RoutingError
from repro.geometry import Point, Segment
from repro.grid import Via
from repro.router import CostParams, NetRoute, RoutingResult
from repro.router.cost import PAPER_PARAMS


class TestCostParams:
    def test_paper_defaults(self):
        assert PAPER_PARAMS.alpha == 1.0
        assert PAPER_PARAMS.beta == 1.0
        assert PAPER_PARAMS.gamma == 1.5
        assert PAPER_PARAMS.flip_threshold == 10.0
        assert PAPER_PARAMS.max_ripup_iterations == 3

    def test_validation(self):
        with pytest.raises(RoutingError):
            CostParams(alpha=0)
        with pytest.raises(RoutingError):
            CostParams(beta=-1)
        with pytest.raises(RoutingError):
            CostParams(max_ripup_iterations=-1)
        with pytest.raises(RoutingError):
            CostParams(delta_tip=-0.1)


class TestNetRoute:
    def test_wirelength_and_vias(self):
        route = NetRoute(
            net_id=0,
            segments=[
                Segment(0, Point(0, 0), Point(5, 0)),
                Segment(1, Point(5, 0), Point(5, 3)),
            ],
            vias=[Via(0, Point(5, 0))],
            success=True,
        )
        assert route.wirelength == 8
        assert route.via_count == 1


class TestRoutingResult:
    def _result(self):
        r = RoutingResult()
        r.routes[0] = NetRoute(net_id=0, success=True,
                               segments=[Segment(0, Point(0, 0), Point(4, 0))])
        r.routes[1] = NetRoute(net_id=1, success=False)
        return r

    def test_routability(self):
        r = self._result()
        assert r.routed_count == 1
        assert r.routability == 0.5

    def test_empty_routability(self):
        assert RoutingResult().routability == 0.0

    def test_totals_skip_failed(self):
        r = self._result()
        assert r.total_wirelength == 4
        assert r.total_vias == 0

    def test_summary_mentions_key_figures(self):
        r = self._result()
        r.overlay_nm = 123.0
        text = r.summary()
        assert "1/2" in text
        assert "123" in text

"""The parallel batch-routing engine: scheduling safety + determinism.

Two properties carry the whole design:

* batches produced by the halo-disjoint partitioner are pairwise
  non-interacting (checked here by brute-force window intersection), and
* whatever the scheduler does, ``route_all`` with N workers is
  bit-identical to the sequential router — speculative results are only
  consumed when provably equal to what the sequential flow would have
  computed, and every miss falls back to a live route.
"""

from collections import deque

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.router import SadpRouter
from repro.router.parallel import (
    BatchScheduler,
    ParallelStats,
    _DirtyTracker,
    interaction_halo,
    make_executor,
    windows_disjoint,
)


def _route_signature(result, router):
    """Everything observable about a run, for exact comparison."""
    return {
        "routes": {
            net_id: (route.success, tuple(route.segments), tuple(route.vias))
            for net_id, route in result.routes.items()
        },
        "colorings": router.colorings,
        "overlay_units": result.overlay_units,
        "cut_conflicts": result.cut_conflicts,
        "searches": router.engine.total_searches,
        "expansions": router.engine.total_expansions,
    }


def _run(circuit, scale, workers, executor="thread", seed=7):
    grid, nets = generate_benchmark(spec_by_name(circuit), scale, seed=seed)
    router = SadpRouter(grid, nets, workers=workers, executor=executor)
    result = router.route_all()
    return _route_signature(result, router), router


class TestWindows:
    def test_windows_disjoint_basics(self):
        assert windows_disjoint((0, 4, 0, 4), (5, 9, 0, 4))
        assert windows_disjoint((0, 4, 0, 4), (0, 4, 5, 9))
        assert not windows_disjoint((0, 4, 0, 4), (4, 9, 4, 9))  # touch = interact
        assert not windows_disjoint((0, 9, 0, 9), (3, 5, 3, 5))  # containment

    def test_halo_covers_overlay_and_independence(self):
        class Rules:
            d_indep_tracks = 3

        assert interaction_halo(Rules()) == 5
        assert interaction_halo(object()) == 5  # default d_indep_tracks


class TestBatchScheduler:
    """Property: every batch the partitioner emits is pairwise disjoint."""

    @pytest.mark.parametrize("circuit,scale", [("Test1", 0.2), ("Test5", 0.1)])
    def test_batches_pairwise_non_interacting(self, circuit, scale):
        grid, nets = generate_benchmark(spec_by_name(circuit), scale, seed=7)
        router = SadpRouter(grid, nets)
        scheduler = BatchScheduler(
            router.params, grid.rules, grid.width, grid.height,
            max_batch=8, lookahead=32,
        )
        queue = deque(nets.ordered_for_routing(router.order))
        saw_multi = False
        while queue:
            picked = scheduler.pick(queue)
            assert picked, "head of queue must always be picked"
            assert picked[0][0].net_id == queue[0].net_id
            # Brute-force: every pair of windows in the batch is disjoint.
            for i in range(len(picked)):
                for j in range(i + 1, len(picked)):
                    assert windows_disjoint(picked[i][1], picked[j][1]), (
                        f"batch windows {picked[i][1]} and {picked[j][1]} "
                        "interact"
                    )
            saw_multi |= len(picked) > 1
            # Consume exactly this batch and move on.
            batch_ids = {net.net_id for net, _ in picked}
            queue = deque(n for n in queue if n.net_id not in batch_ids)
        assert saw_multi, "scheduler never formed a batch > 1 net"

    def test_window_contains_all_pins_plus_halo(self):
        grid, nets = generate_benchmark(spec_by_name("Test1"), 0.2, seed=7)
        router = SadpRouter(grid, nets)
        scheduler = BatchScheduler(
            router.params, grid.rules, grid.width, grid.height,
            max_batch=4, lookahead=16,
        )
        for net in nets:
            xlo, xhi, ylo, yhi = scheduler.window(net)
            pad = router.params.search_margin + scheduler.halo
            for pin in (net.source, net.target, *net.taps):
                for p in pin.candidates:
                    assert xlo <= p.x <= xhi and ylo <= p.y <= yhi
                    assert xlo <= max(0, p.x - pad)
                    assert xhi >= min(grid.width - 1, p.x + pad)


class TestDirtyTracker:
    def test_tracks_changed_columns(self):
        tracker = _DirtyTracker()
        tracker.on_cells_changed([(0, 3, 4), (1, 9, 9)])
        assert tracker.window_dirty((0, 5, 0, 5))
        assert tracker.window_dirty((9, 9, 9, 9))
        assert not tracker.window_dirty((5, 8, 0, 3))
        tracker.clear()
        assert not tracker.window_dirty((0, 5, 0, 5))

    def test_reset_poisons_everything(self):
        tracker = _DirtyTracker()
        tracker.on_grid_reset()
        assert tracker.window_dirty((0, 0, 0, 0))
        tracker.clear()
        assert not tracker.window_dirty((0, 0, 0, 0))


class TestExecutors:
    def test_serial_executor_runs_inline(self):
        pool = make_executor("serial", 4)
        assert pool.submit(lambda a, b: a + b, 2, 3).result() == 5
        pool.shutdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_executor("fiber", 2)


class TestParallelStats:
    def test_to_dict_shape(self):
        stats = ParallelStats(workers=2, executor="thread")
        stats.batches = 2
        stats.batched_nets = 7
        stats.hits = 6
        stats.fallbacks = 1
        stats.fallback_reasons["stale"] = 1
        out = stats.to_dict()
        assert out["workers"] == 2
        assert out["mean_batch_size"] == 3.5
        assert out["fallback_reasons"] == {"stale": 1}


class TestDeterminism:
    """workers=N must be bit-identical to workers=1, route for route."""

    @pytest.mark.parametrize("circuit,scale", [("Test1", 0.2), ("Test6", 0.2)])
    def test_worker_counts_agree(self, circuit, scale):
        baseline, _ = _run(circuit, scale, workers=1)
        for workers in (2, 4):
            signature, router = _run(circuit, scale, workers=workers)
            assert router.parallel_stats is not None
            assert signature == baseline, (
                f"{circuit} with {workers} workers diverged from sequential"
            )

    def test_parallel_path_actually_engaged(self):
        _, router = _run("Test1", 0.2, workers=4)
        stats = router.parallel_stats
        assert stats.batches >= 1
        assert stats.hits >= 1
        assert stats.batched_nets + stats.sequential_nets == len(router.netlist)

    def test_serial_executor_agrees_too(self):
        baseline, _ = _run("Test1", 0.2, workers=1)
        signature, _ = _run("Test1", 0.2, workers=2, executor="serial")
        assert signature == baseline

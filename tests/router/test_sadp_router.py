"""Integration tests for the full overlay-aware routing flow."""

import pytest

from repro.color import Color
from repro.core import ScenarioType
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import CostParams, SadpRouter


def make_router(nets, size=30, **kwargs):
    grid = RoutingGrid(size, size)
    return SadpRouter(grid, Netlist(nets), **kwargs)


class TestBasicFlow:
    def test_single_net(self):
        router = make_router([Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))])
        result = router.route_all()
        assert result.routability == 1.0
        assert result.cut_conflicts == 0
        assert result.overlay_units == 0
        assert result.routes[0].wirelength == 18

    def test_parallel_nets_get_alternating_colors(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 5 + i), Pin.at(20, 5 + i)) for i in range(4)
        ]
        result = make_router(nets).route_all()
        assert result.routability == 1.0
        assert result.hard_overlays == 0
        colors = result.colorings[0]
        # Adjacent tracks force alternating colors (type 1-a).
        for i in range(3):
            assert colors[i] != colors[i + 1]

    def test_empty_netlist(self):
        result = make_router([]).route_all()
        assert result.routes == {}
        assert result.overlay_units == 0

    def test_colorings_cover_routed_layers(self):
        nets = [Net(0, "a", Pin.at(2, 2), Pin.at(18, 18))]
        result = make_router(nets).route_all()
        route = result.routes[0]
        for seg in route.segments:
            assert 0 in result.colorings[seg.layer] or not result.colorings[
                seg.layer
            ]


class TestOddCycleDecomposition:
    def test_odd_cycle_solved_by_merge(self):
        """Three mutually adjacent wires: 1-a + 1-a + 1-b is colorable."""
        nets = [
            Net(0, "a", Pin.at(2, 5), Pin.at(12, 5)),
            Net(1, "b", Pin.at(2, 6), Pin.at(12, 6)),
            # Net 2 abuts net 0 tip-to-tip on the same track.
            Net(2, "c", Pin.at(13, 5), Pin.at(22, 5)),
        ]
        result = make_router(nets).route_all()
        assert result.routability == 1.0
        assert result.hard_overlays == 0
        colors = result.colorings[0]
        assert colors[0] != colors[1]
        assert colors[0] == colors[2]  # merged pair shares its color

    def test_pin_reservation_protects_later_nets(self):
        # Net 1's pins sit where net 0's shortest path would run; with
        # reservation, net 0 must route around and net 1 still routes.
        nets = [
            Net(0, "long", Pin.at(0, 10), Pin.at(29, 10)),
            Net(1, "short", Pin.at(15, 10), Pin.at(15, 12)),
        ]
        result = make_router(nets).route_all()
        assert result.routability == 1.0


class TestGuarantees:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_zero_conflicts_randomised(self, seed):
        import random

        rng = random.Random(seed)
        used = set()
        nets = []
        for i in range(25):
            while True:
                a = Point(rng.randrange(30), rng.randrange(30))
                if a not in used:
                    used.add(a)
                    break
            while True:
                b = Point(
                    min(max(a.x + rng.randint(-8, 8), 0), 29),
                    min(max(a.y + rng.randint(-8, 8), 0), 29),
                )
                if b not in used and b != a:
                    used.add(b)
                    break
            nets.append(Net(i, f"n{i}", Pin(candidates=(a,)), Pin(candidates=(b,))))
        result = make_router(nets).route_all()
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0

    def test_hard_constraints_always_satisfied(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 4 + i), Pin.at(24, 4 + i)) for i in range(6)
        ]
        router = make_router(nets)
        result = router.route_all()
        for layer, graph in enumerate(router.graphs):
            ev = graph.evaluate(router.colorings[layer])
            assert ev.hard_violations == 0

    def test_rip_up_net_public_api(self):
        nets = [Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))]
        router = make_router(nets)
        result = router.route_all()
        assert result.routability == 1.0
        router.rip_up_net(0)
        assert list(router.grid.cells_of_net(0)) == [
            (0, Point(2, 5)),
            (0, Point(20, 5)),
        ]  # only the reserved pins remain


class TestAblations:
    def test_flipping_disabled_still_feasible(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 4 + i), Pin.at(24, 4 + i)) for i in range(5)
        ]
        result = make_router(nets, enable_flipping=False).route_all()
        assert result.hard_overlays == 0
        assert result.color_flips == 0

    def test_t2b_penalty_disabled(self):
        nets = [Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))]
        result = make_router(nets, enable_t2b_penalty=False).route_all()
        assert result.routability == 1.0

    def test_flipping_enabled_counts(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 4 + i), Pin.at(24, 4 + i)) for i in range(5)
        ]
        result = make_router(nets).route_all()
        assert result.color_flips >= 1  # at least the final pass


class TestMultiCandidate:
    def test_candidate_choice(self):
        src = Pin.multi((Point(2, 5), Point(2, 15)))
        dst = Pin.multi((Point(20, 15), Point(20, 25)))
        result = make_router([Net(0, "m", src, dst)]).route_all()
        assert result.routability == 1.0
        # Best pairing is (2,15) -> (20,15): a straight 18-step wire.
        assert result.routes[0].wirelength == 18

"""Tests for the routing-event trace."""

import pytest

from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter
from repro.router.trace import RouterTrace


@pytest.fixture
def traced_run():
    grid = RoutingGrid(26, 26)
    nets = Netlist(
        [
            Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
            Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
            Net(2, "c", Pin.at(4, 10), Pin.at(18, 16)),
        ]
    )
    router = SadpRouter(grid, nets)
    trace = RouterTrace(router)
    result = router.route_all()
    return trace, result


class TestTrace:
    def test_route_events_bracket_every_net(self, traced_run):
        trace, result = traced_run
        # rescue/repair may re-route, so starts >= nets.
        assert trace.count("route_start") >= len(result.routes)
        assert trace.count("route_start") == trace.count("route_end")

    def test_end_events_carry_outcome(self, traced_run):
        trace, result = traced_run
        ends = [e for e in trace.events if e.kind == "route_end"]
        for event in ends:
            assert "success" in event.details
            assert "wirelength" in event.details

    def test_of_net_filters(self, traced_run):
        trace, _ = traced_run
        events = trace.of_net(0)
        assert events
        assert all(e.net_id == 0 for e in events)

    def test_text_rendering(self, traced_run):
        trace, _ = traced_run
        text = trace.to_text()
        assert "Routing trace" in text
        assert "totals:" in text

    def test_text_limit(self, traced_run):
        trace, _ = traced_run
        text = trace.to_text(limit=2)
        assert "more events" in text

    def test_ripup_reasons_shape(self):
        grid = RoutingGrid(26, 26)
        router = SadpRouter(grid, Netlist([Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))]))
        trace = RouterTrace(router)
        router.route_all()
        reasons = trace.ripup_reasons()
        assert isinstance(reasons, dict)
        assert all(isinstance(v, int) for v in reasons.values())


class TestTraceRepr:
    def test_repr_sorts_keys_and_escapes_values(self):
        from repro.router.trace import TraceEvent

        event = TraceEvent(
            "route_end", 3, {"z": True, "a": "hi there", "m": [2, 1]}
        )
        # keys sorted, strings quoted, bools/ lists JSON-encoded
        assert repr(event) == '<route_end net=3 a="hi there", m=[2, 1], z=true>'

    def test_repr_identical_for_equal_events(self):
        from repro.router.trace import TraceEvent

        a = TraceEvent("k", None, {"x": 1, "y": 2})
        b = TraceEvent("k", None, {"y": 2, "x": 1})
        assert repr(a) == repr(b)


class TestTraceJsonlRoundTrip:
    def test_round_trip_preserves_events(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        loaded = RouterTrace.from_jsonl(path)
        assert loaded.router is None
        assert loaded.events == trace.events
        # loaded traces answer the same queries
        assert loaded.count("route_start") == trace.count("route_start")
        assert loaded.ripup_reasons() == trace.ripup_reasons()

    def test_from_jsonl_reads_unified_run_log(self, traced_run, tmp_path):
        from repro.obs.export import export_run_jsonl

        trace, _ = traced_run
        path = export_run_jsonl(tmp_path / "run.jsonl", router_trace=trace)
        loaded = RouterTrace.from_jsonl(path)
        assert loaded.events == trace.events

    def test_router_less_trace_is_empty(self):
        trace = RouterTrace()
        assert trace.events == []
        assert trace.count("route_start") == 0

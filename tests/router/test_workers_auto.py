"""``workers="auto"``: the scheduler dry-run and the serial fallback.

Auto mode predicts the batched-net fraction by dry-running the batch
scheduler over the ordered queue, then routes in parallel only when
enough nets would actually land in >=2-net batches. These tests pin the
prediction itself (spread-out vs piled-up netlists), the decision
recording in ``ParallelStats``, and that both outcomes commit the exact
sequential result.
"""

import os

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import BatchScheduler, SadpRouter
from repro.router.parallel import (
    AUTO_MIN_BATCHED_FRACTION,
    predict_batched_fraction,
)


def _netlist(pairs):
    nets = Netlist()
    for i, (sx, sy, tx, ty) in enumerate(pairs):
        nets.add(
            Net(
                net_id=i,
                name=f"n{i}",
                source=Pin.at(sx, sy),
                target=Pin.at(tx, ty),
            )
        )
    return nets


def _scheduler(router, workers=2):
    return BatchScheduler(
        router.params,
        router.grid.rules,
        router.grid.width,
        router.grid.height,
        max_batch=max(2 * workers, 2),
        lookahead=max(8 * workers, 16),
    )


class TestPrediction:
    def test_spread_nets_predict_batched(self):
        grid = RoutingGrid(120, 120)
        nets = _netlist(
            [(5 + 30 * i, 5, 5 + 30 * i, 20) for i in range(4)]
        )
        router = SadpRouter(grid, nets)
        fraction = predict_batched_fraction(
            _scheduler(router), list(nets)
        )
        assert fraction >= AUTO_MIN_BATCHED_FRACTION

    def test_piled_up_nets_predict_serial(self):
        grid = RoutingGrid(40, 40)
        # every window overlaps every other: nothing can batch
        nets = _netlist([(10, 10 + i, 25, 10 + i) for i in range(4)])
        router = SadpRouter(grid, nets)
        fraction = predict_batched_fraction(
            _scheduler(router), list(nets)
        )
        assert fraction == 0.0

    def test_empty_queue(self):
        grid = RoutingGrid(20, 20)
        router = SadpRouter(grid, Netlist())
        assert predict_batched_fraction(_scheduler(router), []) == 0.0

    def test_prediction_matches_live_batching(self):
        """The dry run is the same pick/consume loop the live router
        uses, so on a static queue its batched count matches the batch
        sizes the parallel run actually forms."""
        grid, nets = generate_benchmark(
            spec_by_name("Test1"), scale=0.12, seed=2014
        )
        router = SadpRouter(grid, nets, workers=2, executor="thread")
        ordered = list(router.netlist.ordered_for_routing(router.order))
        fraction = predict_batched_fraction(_scheduler(router), ordered)
        assert 0.0 <= fraction <= 1.0


class TestAutoResolution:
    def test_explicit_workers_bypass_auto(self):
        grid = RoutingGrid(20, 20)
        router = SadpRouter(grid, Netlist(), workers=3)
        assert router._resolve_workers([]) == (3, "batch", None)

    def test_auto_serial_on_tiny_netlist(self):
        grid = RoutingGrid(20, 20)
        nets = _netlist([(2, 2, 15, 15)])
        router = SadpRouter(grid, nets, workers="auto")
        workers, mode, decision = router._resolve_workers(list(nets))
        assert workers == 1
        assert mode == "batch"
        assert decision == ("serial", 0.0)

    def test_auto_parallel_on_spread_netlist(self):
        if min(4, os.cpu_count() or 1) < 2:
            pytest.skip("single-core host: auto always falls back to serial")
        grid = RoutingGrid(120, 120)
        nets = _netlist(
            [(5 + 30 * i, 5, 5 + 30 * i, 20) for i in range(4)]
        )
        router = SadpRouter(grid, nets, workers="auto")
        workers, mode, decision = router._resolve_workers(list(nets))
        assert workers >= 2
        assert mode == "batch"  # 4 nets can never clear the shard bar
        assert decision[0] == "parallel"
        assert decision[1] >= AUTO_MIN_BATCHED_FRACTION

    def test_auto_serial_on_congested_netlist(self):
        grid = RoutingGrid(40, 40)
        nets = _netlist([(10, 10 + i, 25, 10 + i) for i in range(4)])
        router = SadpRouter(grid, nets, workers="auto")
        workers, mode, decision = router._resolve_workers(list(nets))
        assert workers == 1
        assert decision[0] == "serial"

    def test_explicit_workers_shard_on_forces_sharded_mode(self):
        grid, nets = generate_benchmark(
            spec_by_name("Test1"), scale=0.2, seed=2014
        )
        router = SadpRouter(grid, nets, workers=2, shard="on")
        ordered = list(router.netlist.ordered_for_routing(router.order))
        workers, mode, decision = router._resolve_workers(ordered)
        assert (workers, mode, decision) == (2, "sharded", None)
        assert router._shard_plan is not None
        assert router._shard_plan.grid is not None

    def test_shard_off_keeps_batch_mode(self):
        grid, nets = generate_benchmark(
            spec_by_name("Test1"), scale=0.2, seed=2014
        )
        router = SadpRouter(grid, nets, workers=2, shard="off")
        ordered = list(router.netlist.ordered_for_routing(router.order))
        assert router._resolve_workers(ordered) == (2, "batch", None)


class TestEndToEnd:
    def test_auto_records_decision_and_matches_sequential(self):
        spec = spec_by_name("Test1")
        grid_a, nets_a = generate_benchmark(spec, scale=0.12, seed=2014)
        grid_s, nets_s = generate_benchmark(spec, scale=0.12, seed=2014)
        auto = SadpRouter(grid_a, nets_a, workers="auto", executor="thread")
        seq = SadpRouter(grid_s, nets_s)
        res_auto = auto.route_all()
        res_seq = seq.route_all()
        # identical committed result either way the decision went
        assert res_auto.routes.keys() == res_seq.routes.keys()
        for net_id in res_seq.routes:
            a, b = res_auto.routes[net_id], res_seq.routes[net_id]
            assert (a.success, a.segments, a.vias) == (
                b.success,
                b.segments,
                b.vias,
            )
        assert res_auto.overlay_units == res_seq.overlay_units
        # the decision is always recorded, serial fallback included
        stats = auto.parallel_stats
        assert stats is not None
        assert stats.auto_decision in ("serial", "parallel", "sharded")
        payload = stats.to_dict()
        assert payload["auto_decision"] == stats.auto_decision
        if stats.auto_decision in ("serial", "parallel"):
            assert 0.0 <= stats.predicted_batched_fraction <= 1.0
            assert (
                payload["predicted_batched_fraction"]
                == stats.predicted_batched_fraction
            )
        if stats.auto_decision == "serial":
            assert stats.workers == 1
        else:
            assert stats.workers >= 2

    def test_explicit_workers_leave_auto_fields_unset(self):
        grid, nets = generate_benchmark(
            spec_by_name("Test1"), scale=0.1, seed=2014
        )
        router = SadpRouter(grid, nets, workers=2, executor="thread")
        router.route_all()
        stats = router.parallel_stats
        assert stats is not None
        assert stats.auto_decision == ""
        assert "auto_decision" not in stats.to_dict()

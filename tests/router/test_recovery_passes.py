"""Tests for the recovery machinery: rescue pass, flip scope cap."""

import pytest

from repro.errors import RoutingError
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import CostParams, SadpRouter


class TestFlipScopeCap:
    def test_cap_validation(self):
        with pytest.raises(RoutingError):
            CostParams(flip_scope_cap=0)

    def test_tiny_cap_still_conflict_free(self):
        """Even with per-net flipping effectively disabled (cap 1), the
        final full-layout pass restores the guarantees."""
        grid = RoutingGrid(26, 26)
        nets = Netlist(
            [Net(i, f"n{i}", Pin.at(2, 4 + i), Pin.at(22, 4 + i)) for i in range(6)]
        )
        params = CostParams(flip_scope_cap=1)
        result = SadpRouter(grid, nets, params=params).route_all()
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0
        # Adjacent-track bus still alternates after the final pass.
        colors = result.colorings[0]
        for i in range(5):
            assert colors[i] != colors[i + 1]

    def test_large_cap_equivalent_on_small_instances(self):
        def run(cap):
            grid = RoutingGrid(26, 26)
            nets = Netlist(
                [
                    Net(i, f"n{i}", Pin.at(2, 4 + i), Pin.at(22, 4 + i))
                    for i in range(4)
                ]
            )
            params = CostParams(flip_scope_cap=cap)
            return SadpRouter(grid, nets, params=params).route_all()

        a, b = run(400), run(100_000)
        assert a.overlay_units == b.overlay_units
        assert a.routability == b.routability


class TestRescuePass:
    def test_rescue_recovers_transient_failures(self):
        """A net whose first attempt is blocked must get re-tried after
        the rest of the netlist settles (here: after eviction freed it)."""
        grid = RoutingGrid(26, 26)
        # Dense cluster around net 5's pins makes its first attempts hard.
        nets = Netlist(
            [
                Net(0, "w0", Pin.at(6, 9), Pin.at(18, 9)),
                Net(1, "w1", Pin.at(6, 10), Pin.at(18, 10)),
                Net(2, "w2", Pin.at(6, 11), Pin.at(18, 11)),
                Net(3, "w3", Pin.at(6, 12), Pin.at(18, 12)),
                Net(4, "w4", Pin.at(6, 13), Pin.at(18, 13)),
                Net(5, "trapped", Pin.at(10, 10), Pin.at(12, 12)),
            ]
        )
        result = SadpRouter(grid, nets).route_all()
        # Not asserting every net routes (density is the point), but the
        # result must stay guarantee-clean and route most of the cluster.
        assert result.cut_conflicts == 0
        assert result.routed_count >= 5

    def test_rescue_never_breaks_guarantees(self):
        import random

        rng = random.Random(99)
        used = set()
        nets = []
        for i in range(30):
            while True:
                a = Point(rng.randrange(24), rng.randrange(24))
                if a not in used:
                    used.add(a)
                    break
            while True:
                b = Point(
                    min(max(a.x + rng.randint(-6, 6), 0), 23),
                    min(max(a.y + rng.randint(-6, 6), 0), 23),
                )
                if b != a and b not in used:
                    used.add(b)
                    break
            nets.append(Net(i, f"n{i}", Pin(candidates=(a,)), Pin(candidates=(b,))))
        grid = RoutingGrid(24, 24)
        result = SadpRouter(grid, Netlist(nets)).route_all()
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0

"""Edge-case and robustness tests for the routing flow."""

import pytest

from repro.color import Color
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import CostParams, SadpRouter
from repro.router.io import result_to_dict


class TestDeterminism:
    def test_same_input_same_result(self):
        def run():
            grid = RoutingGrid(28, 28)
            nets = Netlist(
                [
                    Net(i, f"n{i}", Pin.at(2 + i, 4 + 2 * i), Pin.at(22, 5 + 2 * i))
                    for i in range(6)
                ]
            )
            return result_to_dict(SadpRouter(grid, nets).route_all())

        a, b = run(), run()
        a["metrics"].pop("cpu_seconds")
        b["metrics"].pop("cpu_seconds")
        assert a == b


class TestBlockedEnvironments:
    def test_pin_on_blocked_cell_fails_gracefully(self):
        grid = RoutingGrid(20, 20)
        grid.block(0, Rect(5, 5, 6, 6))
        nets = Netlist([Net(0, "a", Pin.at(5, 5), Pin.at(15, 5))])
        result = SadpRouter(grid, nets).route_all()
        assert not result.routes[0].success
        assert result.cut_conflicts == 0

    def test_walled_region_unroutable(self):
        grid = RoutingGrid(20, 20)
        for layer in range(3):
            grid.block(layer, Rect(10, 0, 11, 20))
        nets = Netlist([Net(0, "a", Pin.at(2, 10), Pin.at(18, 10))])
        result = SadpRouter(grid, nets).route_all()
        assert not result.routes[0].success

    def test_narrow_gap_is_found(self):
        grid = RoutingGrid(20, 20)
        for layer in range(3):
            grid.block(layer, Rect(10, 0, 11, 9))
            grid.block(layer, Rect(10, 10, 11, 20))  # gap at y=9
        nets = Netlist([Net(0, "a", Pin.at(2, 3), Pin.at(18, 3))])
        result = SadpRouter(grid, nets).route_all()
        assert result.routes[0].success
        cells = {p for _, p in grid.cells_of_net(0)}
        assert Point(10, 9) in cells


class TestDenseTracks:
    def test_interleaved_bus_colors_consistent(self):
        """Six wires on six adjacent tracks must 2-color alternately."""
        grid = RoutingGrid(30, 30)
        nets = Netlist(
            [Net(i, f"b{i}", Pin.at(2, 10 + i), Pin.at(26, 10 + i)) for i in range(6)]
        )
        result = SadpRouter(grid, nets).route_all()
        assert result.routability == 1.0
        colors = [result.colorings[0][i] for i in range(6)]
        for a, b in zip(colors, colors[1:]):
            assert a != b
        assert result.overlay_units == 0
        assert result.hard_overlays == 0

    def test_crossing_buses_on_different_layers(self):
        grid = RoutingGrid(30, 30)
        nets = [
            Net(i, f"h{i}", Pin.at(2, 8 + i), Pin.at(26, 8 + i)) for i in range(3)
        ]
        # Vertical nets must use M2; their pins are on M1.
        nets += [
            Net(3 + i, f"v{i}", Pin.at(8 + 2 * i, 2), Pin.at(8 + 2 * i, 26))
            for i in range(3)
        ]
        result = SadpRouter(grid, Netlist(nets)).route_all()
        assert result.routability == 1.0
        assert result.cut_conflicts == 0


class TestParams:
    def test_zero_ripups_budget(self):
        grid = RoutingGrid(24, 24)
        nets = Netlist([Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))])
        params = CostParams(max_ripup_iterations=0)
        result = SadpRouter(grid, nets, params=params).route_all()
        assert result.routability == 1.0

    def test_aggressive_gamma_diverts_from_tip_gaps(self):
        grid = RoutingGrid(24, 24)
        # A reserved pin pair sits two tracks ahead on the straight path.
        nets = Netlist(
            [
                Net(0, "blockish", Pin.at(12, 5), Pin.at(13, 5)),
                Net(1, "mover", Pin.at(2, 5), Pin.at(22, 5)),
            ]
        )
        result = SadpRouter(
            grid, nets, params=CostParams(gamma=50.0)
        ).route_all()
        assert result.routability == 1.0
        # The mover leaves the track instead of stopping 2 cells short.
        mover_cells = {p for l, p in grid.cells_of_net(1) if l == 0}
        assert Point(10, 5) not in mover_cells or Point(15, 5) not in mover_cells


class TestEviction:
    def test_eviction_preserves_both_nets_when_possible(self):
        """A pin-trapped net evicts its blocker; both end up routed."""
        grid = RoutingGrid(26, 26)
        # Long net routed first would trap the short net's pins region.
        nets = Netlist(
            [
                Net(0, "short", Pin.at(10, 10), Pin.at(12, 10)),
                Net(1, "long", Pin.at(2, 10), Pin.at(24, 10)),
            ]
        )
        result = SadpRouter(grid, nets).route_all()
        assert result.routes[0].success and result.routes[1].success

"""Fast-path vs reference-path equivalence.

The flat-index fast search and the dict-based reference implementation
must produce *identical* node sequences and costs — same FP operation
order, same tie-breaking — on every workload. These tests pin that
contract at the engine level (seeded random occupancy, penalties,
overlay terms) and end-to-end through the full SadpRouter flow on
seeded Test1/Test6 instances (fixed and multi-candidate pins).
"""

import random

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router import AStarRouter, CostParams, SadpRouter, SearchRequest


def _random_occupancy(grid: RoutingGrid, rng: random.Random, fill: float) -> None:
    for layer in range(grid.num_layers):
        for x in range(grid.width):
            for y in range(grid.height):
                if rng.random() < fill:
                    grid.occupy(layer, Point(x, y), rng.randrange(1, 20))


def _engines(grid, params, **kwargs):
    fast = AStarRouter(grid, params, **kwargs)
    ref = AStarRouter(grid, params, use_reference=True, **kwargs)
    return fast, ref


def _assert_same(found_fast, found_ref):
    if found_ref is None:
        assert found_fast is None
        return
    assert found_fast is not None
    assert found_fast.nodes == found_ref.nodes
    assert found_fast.cost == found_ref.cost  # bit-exact, not approx
    assert found_fast.segments == found_ref.segments
    assert found_fast.vias == found_ref.vias
    assert found_fast.expansions == found_ref.expansions


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_occupancy_with_overlay_and_penalties(self, seed):
        rng = random.Random(seed)
        grid = RoutingGrid(28, 28)
        _random_occupancy(grid, rng, fill=0.12)
        penalties = {
            (rng.randrange(3), rng.randrange(28), rng.randrange(28)): rng.uniform(1, 9)
            for _ in range(40)
        }
        params = CostParams()
        fast, ref = _engines(
            grid,
            params,
            penalty_map=penalties,
            overlay_terms=(params.gamma, params.delta_tip),
        )
        for net_id in (100, 101):
            fast.active_net = ref.active_net = net_id
            for _ in range(6):
                src = Point(rng.randrange(28), rng.randrange(28))
                dst = Point(rng.randrange(28), rng.randrange(28))
                req = SearchRequest(
                    net_id=net_id, sources=[(0, src)], targets=[(0, dst)]
                )
                _assert_same(fast.search(req, extra_margin=4),
                             ref.search(req, extra_margin=4))

    @pytest.mark.parametrize("seed", [7, 8])
    def test_multi_candidate_pins(self, seed):
        rng = random.Random(seed)
        grid = RoutingGrid(24, 24)
        _random_occupancy(grid, rng, fill=0.08)
        params = CostParams()
        fast, ref = _engines(
            grid, params, overlay_terms=(params.gamma, params.delta_tip)
        )
        fast.active_net = ref.active_net = 50
        for _ in range(5):
            sources = [
                (0, Point(rng.randrange(24), rng.randrange(24))) for _ in range(3)
            ]
            targets = [
                (0, Point(rng.randrange(24), rng.randrange(24))) for _ in range(3)
            ]
            req = SearchRequest(net_id=50, sources=sources, targets=targets)
            _assert_same(fast.search(req, extra_margin=3),
                         ref.search(req, extra_margin=3))

    def test_wrong_way_jogs(self):
        grid = RoutingGrid(20, 20)
        params = CostParams(wrong_way_factor=2.0)
        fast, ref = _engines(grid, params)
        req = SearchRequest(
            net_id=0, sources=[(0, Point(2, 2))], targets=[(0, Point(12, 9))]
        )
        _assert_same(fast.search(req), ref.search(req))

    def test_budget_exhaustion_matches(self):
        grid = RoutingGrid(20, 20)
        fast, ref = _engines(grid, CostParams())
        req = SearchRequest(
            net_id=0, sources=[(0, Point(0, 0))], targets=[(0, Point(19, 19))]
        )
        req.max_expansions = 3
        assert fast.search(req) is None
        assert ref.search(req) is None
        assert fast.last_outcome == "budget_exhausted"
        assert ref.last_outcome == "budget_exhausted"


@pytest.mark.parametrize(
    "circuit,scale",
    [("Test1", 0.12), ("Test6", 0.12)],
    ids=["Test1-fixed-pins", "Test6-multi-candidate"],
)
def test_route_all_equivalence(circuit, scale):
    """Full-flow equivalence: SadpRouter with the fast path (and the
    overlay cache, exercised by rip-ups/evictions) commits exactly the
    routes the reference implementation commits."""
    spec = spec_by_name(circuit)
    grid_fast, nets_fast = generate_benchmark(spec, scale=scale, seed=2014)
    grid_ref, nets_ref = generate_benchmark(spec, scale=scale, seed=2014)
    fast_router = SadpRouter(grid_fast, nets_fast)
    ref_router = SadpRouter(grid_ref, nets_ref)
    ref_router.engine.use_reference = True

    res_fast = fast_router.route_all()
    res_ref = ref_router.route_all()

    assert res_fast.routes.keys() == res_ref.routes.keys()
    for net_id in res_fast.routes:
        a, b = res_fast.routes[net_id], res_ref.routes[net_id]
        assert a.success == b.success, f"net {net_id} success diverged"
        assert a.segments == b.segments, f"net {net_id} path diverged"
        assert a.vias == b.vias, f"net {net_id} vias diverged"
    assert res_fast.overlay_units == res_ref.overlay_units
    assert res_fast.total_wirelength == res_ref.total_wirelength
    assert res_fast.cut_conflicts == res_ref.cut_conflicts == 0


def test_callbacks_force_reference_path():
    """Generic per-cell callbacks are only supported by the reference
    implementation; the dispatcher must route through it."""
    grid = RoutingGrid(16, 16)
    calls = []
    engine = AStarRouter(
        grid, CostParams(), overlay_cost=lambda l, p: calls.append(1) or 0.0
    )
    req = SearchRequest(
        net_id=0, sources=[(0, Point(1, 5))], targets=[(0, Point(9, 5))]
    )
    assert engine.search(req) is not None
    assert calls  # the callback actually ran

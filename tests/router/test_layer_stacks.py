"""Routing on non-default layer stacks (1, 2, 4 layers)."""

import pytest

from repro.grid import Direction, RoutingGrid, default_layer_stack
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter


class TestSingleLayer:
    def test_same_track_nets_route(self):
        grid = RoutingGrid(20, 20, layers=default_layer_stack(1))
        nets = Netlist(
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(9, 5)),
                Net(1, "b", Pin.at(11, 5), Pin.at(18, 5)),
            ]
        )
        result = SadpRouter(grid, nets).route_all()
        assert result.routability == 1.0
        assert result.cut_conflicts == 0

    def test_cross_track_net_fails_without_vias(self):
        grid = RoutingGrid(20, 20, layers=default_layer_stack(1))
        nets = Netlist([Net(0, "a", Pin.at(2, 5), Pin.at(10, 9))])
        result = SadpRouter(grid, nets).route_all()
        assert not result.routes[0].success

    def test_wrong_way_rescues_single_layer(self):
        from repro.router import CostParams

        grid = RoutingGrid(20, 20, layers=default_layer_stack(1))
        nets = Netlist([Net(0, "a", Pin.at(2, 5), Pin.at(10, 9))])
        params = CostParams(wrong_way_factor=2.0)
        result = SadpRouter(grid, nets, params=params).route_all()
        assert result.routes[0].success


class TestTwoLayers:
    def test_hv_stack_routes_diagonal_nets(self):
        grid = RoutingGrid(24, 24, layers=default_layer_stack(2))
        nets = Netlist(
            [
                Net(0, "a", Pin.at(2, 2), Pin.at(20, 18)),
                Net(1, "b", Pin.at(2, 4), Pin.at(18, 20)),
            ]
        )
        result = SadpRouter(grid, nets).route_all()
        assert result.routability == 1.0
        assert result.cut_conflicts == 0
        layers_used = {
            seg.layer for r in result.routes.values() for seg in r.segments
        }
        assert layers_used == {0, 1}


class TestFourLayers:
    def test_stack_directions(self):
        stack = default_layer_stack(4)
        assert [l.direction for l in stack] == [
            Direction.HORIZONTAL,
            Direction.VERTICAL,
            Direction.HORIZONTAL,
            Direction.VERTICAL,
        ]

    def test_dense_bus_uses_extra_capacity(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 3 + i), Pin.at(21, 3 + i)) for i in range(12)
        ]
        three = SadpRouter(
            RoutingGrid(24, 24, layers=default_layer_stack(3)), Netlist(nets)
        ).route_all()
        nets4 = [
            Net(i, f"n{i}", Pin.at(2, 3 + i), Pin.at(21, 3 + i)) for i in range(12)
        ]
        four = SadpRouter(
            RoutingGrid(24, 24, layers=default_layer_stack(4)), Netlist(nets4)
        ).route_all()
        assert four.routability >= three.routability
        assert four.cut_conflicts == 0

"""Unit tests for the enable_merge ablation knob (contribution 1)."""

import pytest

from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter


def abutting_pair():
    """Two nets whose shortest routes abut tip-to-tip on one track."""
    return Netlist(
        [
            Net(0, "a", Pin.at(2, 10), Pin.at(12, 10)),
            Net(1, "b", Pin.at(13, 10), Pin.at(22, 10)),
        ]
    )


class TestMergeAblation:
    def test_with_merge_both_route_straight(self):
        grid = RoutingGrid(26, 26)
        result = SadpRouter(grid, abutting_pair()).route_all()
        assert result.routability == 1.0
        assert result.total_ripups == 0
        # The abutting pair merged: same color.
        assert result.colorings[0][0] == result.colorings[0][1]

    def test_without_merge_second_net_detours_or_fails(self):
        grid = RoutingGrid(26, 26)
        result = SadpRouter(grid, abutting_pair(), enable_merge=False).route_all()
        route1 = result.routes[1]
        if route1.success:
            # Either the abutment was avoided by detouring (longer route /
            # vias) or a rip-up happened along the way.
            straight = 9
            assert (
                route1.wirelength > straight
                or route1.via_count > 0
                or result.total_ripups > 0
            )
        assert result.cut_conflicts == 0

    def test_merge_flag_does_not_change_independent_nets(self):
        nets = Netlist(
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 15), Pin.at(20, 15)),
            ]
        )
        with_merge = SadpRouter(RoutingGrid(26, 26), nets).route_all()
        nets2 = Netlist(
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 15), Pin.at(20, 15)),
            ]
        )
        without = SadpRouter(
            RoutingGrid(26, 26), nets2, enable_merge=False
        ).route_all()
        assert with_merge.total_wirelength == without.total_wirelength
        assert with_merge.overlay_units == without.overlay_units == 0

"""Guided vs unguided search equivalence, and the guidance plumbing.

Corridor pruning must be *invisible* to the search result: with
``guidance="on"`` (or ``"auto"``) the fast path returns the bit-identical
paths, costs, and committed metrics as ``guidance="off"`` while expanding
no more nodes. These tests pin that contract at the engine level (random
occupancy, penalties, overlay terms, multi-pin requests) and end-to-end
through ``SadpRouter.route_all`` on seeded Test1/Test6 instances, plus
the memoization and invalidation behaviour of the guidance cache.
"""

import random

import pytest

from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router import AStarRouter, CostParams, SadpRouter, SearchRequest
from repro.router.guidance import HAVE_SCIPY
from repro.router.overlay_cache import OverlayCostCache


def _random_occupancy(grid, rng, fill):
    for layer in range(grid.num_layers):
        for x in range(grid.width):
            for y in range(grid.height):
                if rng.random() < fill:
                    grid.occupy(layer, Point(x, y), rng.randrange(1, 20))


def _assert_same_found(guided, plain):
    if plain is None:
        assert guided is None
        return
    assert guided is not None
    assert guided.nodes == plain.nodes
    assert guided.cost == plain.cost  # bit-exact, not approx
    assert guided.segments == plain.segments
    assert guided.vias == plain.vias
    assert guided.expansions <= plain.expansions


BACKENDS = (["csgraph"] if HAVE_SCIPY else []) + ["sweep"]


class TestEngineEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["on", "auto"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_occupancy_with_overlay_and_penalties(
        self, seed, mode, backend
    ):
        rng = random.Random(seed)
        grid = RoutingGrid(26, 26)
        _random_occupancy(grid, rng, fill=0.12)
        penalties = {
            (rng.randrange(3), rng.randrange(26), rng.randrange(26)): rng.uniform(1, 9)
            for _ in range(30)
        }
        params = CostParams()
        kwargs = dict(
            penalty_map=penalties,
            overlay_terms=(params.gamma, params.delta_tip),
        )
        plain = AStarRouter(grid, params, guidance="off", **kwargs)
        guided = AStarRouter(grid, params, guidance=mode, **kwargs)
        guided.guidance_backend = backend
        guided.guidance_trigger = 16  # make "auto" actually trip
        guided.guidance_min_cells = 0  # windows here are under the size gate
        for net_id in (100, 101):
            plain.active_net = guided.active_net = net_id
            for _ in range(6):
                src = Point(rng.randrange(26), rng.randrange(26))
                dst = Point(rng.randrange(26), rng.randrange(26))
                req = SearchRequest(
                    net_id=net_id, sources=[(0, src)], targets=[(0, dst)]
                )
                _assert_same_found(
                    guided.search(req, extra_margin=4),
                    plain.search(req, extra_margin=4),
                )
        assert guided.total_guided_searches > 0
        assert plain.total_guided_searches == 0
        assert guided.total_expansions <= plain.total_expansions

    def test_multi_candidate_pins(self):
        rng = random.Random(7)
        grid = RoutingGrid(24, 24)
        _random_occupancy(grid, rng, fill=0.08)
        params = CostParams()
        plain = AStarRouter(
            grid, params, overlay_terms=(params.gamma, params.delta_tip)
        )
        guided = AStarRouter(
            grid,
            params,
            overlay_terms=(params.gamma, params.delta_tip),
            guidance="on",
        )
        plain.active_net = guided.active_net = 50
        for _ in range(5):
            sources = [
                (0, Point(rng.randrange(24), rng.randrange(24)))
                for _ in range(3)
            ]
            targets = [
                (0, Point(rng.randrange(24), rng.randrange(24)))
                for _ in range(3)
            ]
            req = SearchRequest(net_id=50, sources=sources, targets=targets)
            _assert_same_found(
                guided.search(req, extra_margin=3),
                plain.search(req, extra_margin=3),
            )

    def test_wrong_way_jogs(self):
        grid = RoutingGrid(20, 20)
        params = CostParams(wrong_way_factor=2.0)
        plain = AStarRouter(grid, params)
        guided = AStarRouter(grid, params, guidance="on")
        req = SearchRequest(
            net_id=0, sources=[(0, Point(2, 2))], targets=[(0, Point(12, 9))]
        )
        _assert_same_found(guided.search(req), plain.search(req))

    def test_unreachable_target_fails_fast(self):
        """With no route to the target the map is all-inf, the corridor
        bound collapses, and the guided search drains its heap instead of
        flooding the window."""
        grid = RoutingGrid(30, 30)
        for y in range(30):  # wall across every layer
            for layer in range(grid.num_layers):
                grid.occupy(layer, Point(15, y), 999)
        plain = AStarRouter(grid, CostParams())
        guided = AStarRouter(grid, CostParams(), guidance="on")
        req = SearchRequest(
            net_id=0, sources=[(0, Point(2, 15))], targets=[(0, Point(28, 15))]
        )
        assert plain.search(req) is None
        assert guided.search(req) is None
        assert guided.last_outcome == plain.last_outcome == "failed"
        assert guided.total_expansions < plain.total_expansions

    def test_off_mode_never_builds(self):
        grid = RoutingGrid(16, 16)
        engine = AStarRouter(grid, CostParams(), guidance="off")
        req = SearchRequest(
            net_id=0, sources=[(0, Point(1, 1))], targets=[(0, Point(14, 14))]
        )
        assert engine.search(req) is not None
        assert engine.total_guidance_builds == 0
        assert engine.total_guided_searches == 0

    def test_auto_size_gate_skips_tiny_windows(self):
        """In auto mode, windows under ``guidance_min_cells`` never pay for
        a map build — the search can't amortise it.  Explicit ``on`` is an
        opt-in that bypasses the gate."""
        req = SearchRequest(
            net_id=0, sources=[(0, Point(1, 1))], targets=[(0, Point(14, 14))]
        )
        grid = RoutingGrid(16, 16)
        auto = AStarRouter(grid, CostParams(), guidance="auto")
        auto.guidance_trigger = 0  # would trip immediately without the gate
        assert auto.search(req) is not None
        assert auto.total_guidance_builds == 0
        assert auto.total_guided_searches == 0

        grid = RoutingGrid(16, 16)
        forced = AStarRouter(grid, CostParams(), guidance="on")
        assert forced.search(req) is not None
        assert forced.total_guided_searches > 0


class TestGuidanceMemo:
    def test_repeat_search_hits_the_memo(self):
        grid = RoutingGrid(20, 20)
        params = CostParams()
        cache = OverlayCostCache(grid, params.gamma, params.delta_tip)
        engine = AStarRouter(
            grid, params, overlay_cache=cache, guidance="on"
        )
        engine.active_net = 5
        req = SearchRequest(
            net_id=5, sources=[(0, Point(2, 2))], targets=[(0, Point(15, 15))]
        )
        first = engine.search(req)
        assert first is not None
        assert cache.guidance_misses == 1
        builds = engine.total_guidance_builds
        second = engine.search(req)
        assert second is not None
        assert second.nodes == first.nodes
        assert cache.guidance_hits == 1
        assert engine.total_guidance_builds == builds  # served from memo

    def test_occupancy_change_inside_window_invalidates(self):
        grid = RoutingGrid(20, 20)
        params = CostParams()
        cache = OverlayCostCache(grid, params.gamma, params.delta_tip)
        engine = AStarRouter(
            grid, params, overlay_cache=cache, guidance="on"
        )
        engine.active_net = 5
        req = SearchRequest(
            net_id=5, sources=[(0, Point(2, 2))], targets=[(0, Point(15, 15))]
        )
        engine.search(req)
        grid.occupy(0, Point(8, 8), 7)  # lands inside the search window
        engine.search(req)
        assert cache.guidance_hits == 0
        assert cache.guidance_misses == 2

    def test_far_away_change_keeps_the_entry(self):
        grid = RoutingGrid(40, 40)
        params = CostParams()
        cache = OverlayCostCache(grid, params.gamma, params.delta_tip)
        engine = AStarRouter(
            grid, params, overlay_cache=cache, guidance="on"
        )
        engine.active_net = 5
        req = SearchRequest(
            net_id=5, sources=[(0, Point(2, 2))], targets=[(0, Point(8, 8))]
        )
        engine.search(req)
        grid.occupy(0, Point(38, 38), 7)  # far outside the window + margin
        engine.search(req)
        assert cache.guidance_hits == 1


@pytest.mark.parametrize(
    "circuit,scale",
    [("Test1", 0.12), ("Test6", 0.12)],
    ids=["Test1-fixed-pins", "Test6-multi-candidate"],
)
def test_route_all_equivalence(circuit, scale):
    """Full-flow equivalence: guidance on/auto commits exactly the routes
    guidance off commits — same paths, same overlay, same wirelength —
    while expanding no more nodes."""
    spec = spec_by_name(circuit)
    results = {}
    engines = {}
    for mode in ("off", "auto", "on"):
        grid, nets = generate_benchmark(spec, scale=scale, seed=2014)
        router = SadpRouter(grid, nets, guidance=mode)
        router.engine.guidance_trigger = 32
        router.engine.guidance_min_cells = 0  # scaled windows are tiny
        results[mode] = router.route_all()
        engines[mode] = router.engine
    base = results["off"]
    for mode in ("auto", "on"):
        res = results[mode]
        assert res.routes.keys() == base.routes.keys()
        for net_id in base.routes:
            a, b = res.routes[net_id], base.routes[net_id]
            assert a.success == b.success, f"net {net_id} success diverged"
            assert a.segments == b.segments, f"net {net_id} path diverged"
            assert a.vias == b.vias, f"net {net_id} vias diverged"
        assert res.overlay_units == base.overlay_units
        assert res.total_wirelength == base.total_wirelength
        assert engines[mode].total_searches == engines["off"].total_searches
        assert engines[mode].total_expansions <= engines["off"].total_expansions
        assert engines[mode].total_guided_searches > 0
    assert engines["off"].total_guided_searches == 0


def test_parallel_guided_matches_serial_guided():
    """Guidance composes with the parallel batch router: same committed
    result, and the worker-side guided-search counters fold back into the
    main engine."""
    spec = spec_by_name("Test1")
    grid_s, nets_s = generate_benchmark(spec, scale=0.12, seed=2014)
    grid_p, nets_p = generate_benchmark(spec, scale=0.12, seed=2014)
    serial = SadpRouter(grid_s, nets_s, guidance="on")
    par = SadpRouter(grid_p, nets_p, workers=2, executor="thread", guidance="on")
    res_s = serial.route_all()
    res_p = par.route_all()
    assert res_p.routes.keys() == res_s.routes.keys()
    for net_id in res_s.routes:
        assert res_p.routes[net_id].segments == res_s.routes[net_id].segments
    assert res_p.overlay_units == res_s.overlay_units
    assert par.engine.total_guided_searches == serial.engine.total_guided_searches


def test_sadp_router_rejects_bad_guidance():
    grid = RoutingGrid(10, 10)
    from repro.netlist import Netlist

    with pytest.raises(ValueError):
        SadpRouter(grid, Netlist(), guidance="sometimes")

"""Worker observability digests: parallel telemetry must match sequential.

Process-pool workers route in a child process whose observability backend
(if any) is discarded; ``solve_subproblem`` therefore ships a picklable
digest of its search spans/counters back with the result, and
``ParallelRouter._accept`` folds it into the parent backend. These tests
pin the equivalence: same span counts, same counter totals, regardless of
executor kind.
"""

import numpy as np
import pytest

from repro import obs
from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.geometry import Point
from repro.router import SadpRouter
from repro.router.astar import SearchSubproblem, solve_subproblem
from repro.router.cost import CostParams

_COUNTERS = (
    "astar_searches_total",
    "astar_nodes_expanded_total",
    "astar_heap_pushes_total",
    "astar_heap_pops_total",
)


def _route_and_snapshot(workers, executor):
    spec = spec_by_name("Test1")
    with obs.session() as ob:
        grid, nets = generate_benchmark(spec, scale=0.12, seed=2014)
        router = SadpRouter(grid, nets, workers=workers, executor=executor)
        result = router.route_all()
        spans = dict(ob.tracer.counts_by_name())
        counters = {name: ob.registry.total(name) for name in _COUNTERS}
        stats = router.parallel_stats
    return result, spans, counters, stats


class TestDigestEquivalence:
    @pytest.mark.parametrize("executor", ["process", "thread", "serial"])
    def test_span_and_counter_totals_match_sequential(self, executor):
        seq_result, seq_spans, seq_counters, _ = _route_and_snapshot(1, "process")
        par_result, par_spans, par_counters, stats = _route_and_snapshot(
            2, executor
        )
        assert par_result.overlay_units == seq_result.overlay_units
        assert par_counters == seq_counters
        assert par_spans.get("astar_search") == seq_spans.get("astar_search")
        # the run exercised the batch path at least once, or the
        # equivalence above would be vacuous
        assert stats is not None and stats.batched_nets >= 2

    def test_digest_attached_to_results(self):
        sub = SearchSubproblem(
            net_id=0,
            sources=[(0, Point(1, 2))],
            targets=[(0, Point(8, 2))],
            taps=[],
            bounds=(0, 11, 0, 5),
            occ=np.zeros((3, 12, 6), dtype=np.int32),
            die_width=12,
            die_height=6,
            horizontal=[True, False, True],
            params=CostParams(),
            overlay_terms=None,
        )
        res = solve_subproblem(sub)
        assert res.obs_digest is not None
        spans = dict(
            (name, (count, total_s))
            for name, count, total_s in res.obs_digest["spans"]
        )
        assert spans["astar_search"][0] >= 1
        assert spans["astar_search"][1] > 0.0
        counters = {name: amount for name, _, amount in res.obs_digest["counters"]}
        assert counters["astar_nodes_expanded_total"] > 0

    def test_external_spans_marked_and_backdated(self):
        """Folded worker spans are synthetic: flagged ``external`` so no
        one mistakes them for live measurements, and back-dated so their
        duration still aggregates into the search phase."""
        _, _, _, _ = _route_and_snapshot(1, "process")  # warm caches
        with obs.session() as ob:
            grid, nets = generate_benchmark(
                spec_by_name("Test1"), scale=0.12, seed=2014
            )
            router = SadpRouter(grid, nets, workers=2, executor="process")
            router.route_all()
            external = [
                sp
                for sp in ob.tracer.finished
                if sp.attrs.get("external")
            ]
            if router.parallel_stats.hits:
                assert external, "process-pool hits must fold external spans"
                for sp in external:
                    assert sp.name == "astar_search"
                    assert sp.end_s >= sp.start_s >= 0.0

    def test_thread_executor_does_not_double_count(self):
        """Thread workers record live into the shared backend; folding
        their digest on top would double every search. Guard the guard:
        totals for thread executors equal sequential, not 2x."""
        _, seq_spans, _, _ = _route_and_snapshot(1, "process")
        _, thr_spans, _, stats = _route_and_snapshot(2, "thread")
        assert stats.hits > 0
        assert thr_spans.get("astar_search") == seq_spans.get("astar_search")

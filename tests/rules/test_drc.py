"""Unit tests for the polygon-level DRC checks."""

from repro.geometry import Rect
from repro.rules import check_min_spacing, check_min_width


class TestMinWidth:
    def test_wide_shapes_pass(self):
        assert check_min_width([Rect(0, 0, 100, 20)], 20) == []

    def test_narrow_flagged(self):
        v = check_min_width([Rect(0, 0, 100, 15)], 20)
        assert len(v) == 1
        assert v[0].rule == "min_width"
        assert v[0].value == 15
        assert v[0].limit == 20

    def test_short_side_is_checked(self):
        assert check_min_width([Rect(0, 0, 15, 100)], 20)


class TestMinSpacing:
    def test_far_apart_pass(self):
        shapes = [Rect(0, 0, 20, 20), Rect(60, 0, 80, 20)]
        assert check_min_spacing(shapes, 30) == []

    def test_close_pair_flagged(self):
        shapes = [Rect(0, 0, 20, 20), Rect(40, 0, 60, 20)]
        v = check_min_spacing(shapes, 30)
        assert len(v) == 1
        assert v[0].value == 20

    def test_diagonal_euclidean(self):
        # Corner gap sqrt(20^2 + 20^2) ~ 28.3 < 30.
        shapes = [Rect(0, 0, 20, 20), Rect(40, 40, 60, 60)]
        assert check_min_spacing(shapes, 30)
        # ... but passes a 28 nm rule.
        assert check_min_spacing(shapes, 28) == []

    def test_touching_shapes_are_one_pattern(self):
        shapes = [Rect(0, 0, 20, 20), Rect(20, 0, 40, 20)]
        assert check_min_spacing(shapes, 30) == []

    def test_restrict_to_filters_by_region(self):
        shapes = [Rect(0, 0, 20, 20), Rect(40, 0, 60, 20)]
        # Violation region is the 20..40 gap band.
        inside = [Rect(25, 5, 35, 15)]
        outside = [Rect(100, 100, 120, 120)]
        assert check_min_spacing(shapes, 30, restrict_to=inside)
        assert check_min_spacing(shapes, 30, restrict_to=outside) == []

"""Unit tests for the SADP design-rule set (Eqs. 1-3)."""

import math

import pytest

from repro.errors import DesignRuleError
from repro.rules import DesignRules
from repro.rules.design_rules import PAPER_10NM_RULES


class TestValidation:
    def test_default_is_the_paper_rule_set(self):
        r = DesignRules()
        assert (r.w_line, r.w_spacer, r.w_cut, r.w_core) == (20, 20, 20, 20)
        assert (r.d_cut, r.d_core) == (30, 30)

    def test_eq1_w_line_equals_w_spacer(self):
        with pytest.raises(DesignRuleError, match="Eq..1."):
            DesignRules(w_line=20, w_spacer=25)

    def test_eq2_cut_equals_core_width(self):
        with pytest.raises(DesignRuleError, match="Eq..2."):
            DesignRules(w_cut=20, w_core=25)

    def test_eq2_cut_distance_equals_core_distance(self):
        with pytest.raises(DesignRuleError, match="Eq..2."):
            DesignRules(d_cut=30, d_core=35)

    def test_eq2_width_strictly_below_distance(self):
        with pytest.raises(DesignRuleError, match="Eq..2."):
            DesignRules(w_cut=30, w_core=30, d_cut=30, d_core=30)

    def test_eq3_overlap_bound(self):
        # d_core must be < w_line + 2*w_spacer - 2*d_overlap = 60 - 2*d_overlap.
        with pytest.raises(DesignRuleError, match="Eq..3."):
            DesignRules(d_overlap=15)
        DesignRules(d_overlap=14)  # 60 - 28 = 32 > 30: fine

    def test_negative_values_rejected(self):
        with pytest.raises(DesignRuleError):
            DesignRules(w_line=0, w_spacer=0)
        with pytest.raises(DesignRuleError):
            DesignRules(d_overlap=-1)


class TestDerived:
    def test_pitch(self, rules):
        assert rules.pitch == 40

    def test_d_indep_theorem_1(self, rules):
        assert rules.d_indep == pytest.approx(math.sqrt(2) * 60)

    def test_d_indep_tracks(self, rules):
        assert rules.d_indep_tracks == 3

    def test_overlay_unit(self, rules):
        assert rules.overlay_unit_nm == rules.w_line

    def test_mergeable_core_gap(self, rules):
        assert rules.mergeable_core_gap(0)
        assert rules.mergeable_core_gap(29)
        assert not rules.mergeable_core_gap(30)
        assert not rules.mergeable_core_gap(-5)

    def test_scaled_preserves_validity(self, rules):
        doubled = rules.scaled(2)
        assert doubled.pitch == 80
        assert doubled.d_core == 60
        with pytest.raises(DesignRuleError):
            rules.scaled(0)

    def test_paper_constant_is_default(self):
        assert PAPER_10NM_RULES == DesignRules()

    def test_frozen(self, rules):
        with pytest.raises(Exception):
            rules.w_line = 10

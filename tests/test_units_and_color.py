"""Unit tests for units (TrackGrid) and the color enums."""

import pytest

from repro.color import ALL_PAIRS, Color, ColorPair
from repro.errors import GeometryError
from repro.units import DEFAULT_BITMAP_RESOLUTION_NM, TrackGrid, nm_to_um, um_to_nm


class TestTrackGrid:
    def test_track_centers(self):
        tg = TrackGrid(pitch_nm=40, wire_width_nm=20)
        assert tg.track_center_nm(0) == 0
        assert tg.track_center_nm(5) == 200

    def test_origin_offset(self):
        tg = TrackGrid(pitch_nm=40, wire_width_nm=20, origin_nm=100)
        assert tg.track_center_nm(1) == 140

    def test_wire_span(self):
        tg = TrackGrid(pitch_nm=40, wire_width_nm=20)
        assert tg.wire_span_nm(2) == (70, 90)

    def test_nearest_track(self):
        tg = TrackGrid(pitch_nm=40, wire_width_nm=20)
        assert tg.nearest_track(0) == 0
        assert tg.nearest_track(58) == 1
        assert tg.nearest_track(-35) == -1

    def test_span_tracks(self):
        tg = TrackGrid(pitch_nm=40, wire_width_nm=20)
        # Interval [30, 130): wires on tracks 1, 2, 3 intersect it.
        assert list(tg.span_tracks(30, 130)) == [1, 2, 3]
        assert list(tg.span_tracks(10, 10)) == []

    def test_validation(self):
        with pytest.raises(GeometryError):
            TrackGrid(pitch_nm=0, wire_width_nm=0)
        with pytest.raises(GeometryError):
            TrackGrid(pitch_nm=40, wire_width_nm=50)

    def test_resolution_divides_rules(self):
        from repro.rules import DesignRules

        r = DesignRules()
        for value in (r.w_line, r.w_spacer, r.w_cut, r.w_core, r.d_cut, r.d_core):
            assert value % DEFAULT_BITMAP_RESOLUTION_NM == 0

    def test_um_conversions(self):
        assert um_to_nm(6.8) == 6800
        assert nm_to_um(6800) == 6.8


class TestColor:
    def test_flipped(self):
        assert Color.CORE.flipped is Color.SECOND
        assert Color.SECOND.flipped is Color.CORE
        assert Color.CORE.flipped.flipped is Color.CORE

    def test_pair_components(self):
        assert ColorPair.CS.a is Color.CORE
        assert ColorPair.CS.b is Color.SECOND

    def test_pair_same(self):
        assert ColorPair.CC.same and ColorPair.SS.same
        assert not ColorPair.CS.same

    def test_pair_swapped(self):
        assert ColorPair.CS.swapped is ColorPair.SC
        assert ColorPair.CC.swapped is ColorPair.CC

    def test_pair_of(self):
        for pair in ALL_PAIRS:
            assert ColorPair.of(pair.a, pair.b) is pair

    def test_all_pairs_order(self):
        assert [p.name for p in ALL_PAIRS] == ["CC", "CS", "SC", "SS"]

"""Unit tests for repro.geometry.spatial.GridIndex."""

import pytest

from repro.errors import GeometryError
from repro.geometry import GridIndex, Rect


class TestGridIndex:
    def test_bad_bucket_size(self):
        with pytest.raises(GeometryError):
            GridIndex(bucket_size=0)

    def test_insert_and_query(self):
        idx = GridIndex(bucket_size=4)
        idx.insert(Rect(0, 0, 2, 2), "a")
        idx.insert(Rect(10, 10, 12, 12), "b")
        hits = idx.query(Rect(1, 1, 11, 11))
        assert {item for _, item in hits} == {"a", "b"}

    def test_query_misses_disjoint(self):
        idx = GridIndex(bucket_size=4)
        idx.insert(Rect(0, 0, 2, 2), "a")
        assert idx.query(Rect(5, 5, 6, 6)) == []

    def test_query_deduplicates_spanning_entries(self):
        idx = GridIndex(bucket_size=2)
        idx.insert(Rect(0, 0, 10, 10), "big")  # spans many buckets
        hits = idx.query(Rect(0, 0, 10, 10))
        assert len(hits) == 1

    def test_remove(self):
        idx = GridIndex(bucket_size=4)
        r = Rect(0, 0, 2, 2)
        idx.insert(r, "a")
        assert idx.remove(r, "a")
        assert not idx.remove(r, "a")
        assert idx.query(Rect(0, 0, 3, 3)) == []
        assert len(idx) == 0

    def test_len_counts_registrations(self):
        idx = GridIndex()
        idx.insert(Rect(0, 0, 2, 2), "a")
        idx.insert(Rect(0, 0, 2, 2), "b")
        assert len(idx) == 2

    def test_neighbours_strict_distance(self):
        idx = GridIndex(bucket_size=4)
        idx.insert(Rect(0, 0, 2, 2), "near")  # gap 2 from the query rect
        idx.insert(Rect(8, 0, 10, 2), "far")  # gap 3 from the query rect
        query = Rect(4, 0, 5, 2)  # cell at x=4
        names = {item for _, item in idx.neighbours(query, 3)}
        assert names == {"near"}

    def test_neighbours_includes_overlapping(self):
        idx = GridIndex(bucket_size=4)
        idx.insert(Rect(0, 0, 5, 5), "x")
        assert idx.neighbours(Rect(1, 1, 2, 2), 3)

    def test_negative_coordinates(self):
        idx = GridIndex(bucket_size=4)
        idx.insert(Rect(-8, -8, -6, -6), "neg")
        assert idx.query(Rect(-7, -7, -5, -5))

    def test_items_iterates_once_each(self):
        idx = GridIndex(bucket_size=2)
        idx.insert(Rect(0, 0, 7, 7), "spanning")
        idx.insert(Rect(1, 1, 2, 2), "small")
        assert sorted(item for _, item in idx.items()) == ["small", "spanning"]

    def test_clear(self):
        idx = GridIndex()
        idx.insert(Rect(0, 0, 1, 1), "a")
        idx.clear()
        assert len(idx) == 0
        assert idx.query(Rect(0, 0, 2, 2)) == []

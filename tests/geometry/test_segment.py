"""Unit tests for repro.geometry.segment."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect, Segment, points_to_segments


class TestSegment:
    def test_diagonal_rejected(self):
        with pytest.raises(GeometryError):
            Segment(0, Point(0, 0), Point(2, 3))

    def test_canonical_endpoint_order(self):
        a = Segment(0, Point(5, 2), Point(1, 2))
        b = Segment(0, Point(1, 2), Point(5, 2))
        assert a == b
        assert a.a == Point(1, 2)

    def test_orientation(self):
        assert Segment(0, Point(0, 3), Point(5, 3)).horizontal
        assert not Segment(0, Point(2, 0), Point(2, 5)).horizontal
        assert Segment(0, Point(2, 2), Point(2, 2)).horizontal  # point defaults H

    def test_point_segment(self):
        seg = Segment(1, Point(4, 4), Point(4, 4))
        assert seg.is_point
        assert seg.length == 0
        assert list(seg.points()) == [Point(4, 4)]

    def test_length_is_steps(self):
        assert Segment(0, Point(1, 1), Point(5, 1)).length == 4

    def test_points_in_order(self):
        seg = Segment(0, Point(2, 7), Point(2, 4))
        assert list(seg.points()) == [Point(2, 4), Point(2, 5), Point(2, 6), Point(2, 7)]

    def test_to_rect_footprint(self):
        seg = Segment(0, Point(1, 3), Point(4, 3))
        assert seg.to_rect() == Rect(1, 3, 5, 4)


class TestPointsToSegments:
    def test_empty(self):
        assert points_to_segments(0, []) == []

    def test_single_point(self):
        segs = points_to_segments(2, [Point(3, 3)])
        assert segs == [Segment(2, Point(3, 3), Point(3, 3))]

    def test_straight_run_is_one_segment(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]
        assert points_to_segments(0, pts) == [Segment(0, Point(0, 0), Point(3, 0))]

    def test_l_shape_splits_at_turn(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(2, 1), Point(2, 2)]
        segs = points_to_segments(0, pts)
        assert segs == [
            Segment(0, Point(0, 0), Point(2, 0)),
            Segment(0, Point(2, 0), Point(2, 2)),
        ]

    def test_non_adjacent_points_rejected(self):
        with pytest.raises(GeometryError):
            points_to_segments(0, [Point(0, 0), Point(2, 0)])

    def test_zigzag(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(2, 1)]
        segs = points_to_segments(0, pts)
        assert len(segs) == 3
        # Segments chain: each shares an endpoint with the next.
        assert segs[0].b == segs[1].a or segs[0].b == segs[1].b

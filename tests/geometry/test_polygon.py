"""Unit tests for repro.geometry.polygon (Theorem 3's fragmentation)."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect, RectilinearPolygon, decompose_rectilinear


class TestDecomposeRectilinear:
    def test_empty(self):
        assert decompose_rectilinear([]) == []

    def test_single_rect_unchanged(self):
        assert decompose_rectilinear([Rect(0, 0, 3, 2)]) == [Rect(0, 0, 3, 2)]

    def test_fragments_are_disjoint_and_cover(self):
        rects = [Rect(0, 0, 10, 2), Rect(4, 0, 6, 8)]
        frags = decompose_rectilinear(rects)
        assert sum(f.area for f in frags) == 10 * 2 + 2 * 8 - 2 * 2
        for i, a in enumerate(frags):
            for b in frags[i + 1 :]:
                assert not a.overlaps(b)

    def test_canonical_for_same_point_set(self):
        a = decompose_rectilinear([Rect(0, 0, 4, 2), Rect(0, 2, 4, 4)])
        b = decompose_rectilinear([Rect(0, 0, 2, 4), Rect(2, 0, 4, 4)])
        assert a == b == [Rect(0, 0, 4, 4)]

    def test_vertical_merge_of_identical_coverage(self):
        # An L: slabs with identical x-coverage merge vertically.
        frags = decompose_rectilinear([Rect(0, 0, 6, 2), Rect(0, 2, 2, 6)])
        assert Rect(0, 0, 6, 2) in frags
        assert Rect(0, 2, 2, 6) in frags


class TestRectilinearPolygon:
    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            RectilinearPolygon([])

    def test_equality_across_assembly(self):
        a = RectilinearPolygon([Rect(0, 0, 4, 2), Rect(2, 0, 6, 2)])
        b = RectilinearPolygon([Rect(0, 0, 6, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_bbox_and_area(self):
        p = RectilinearPolygon([Rect(0, 0, 2, 2), Rect(4, 4, 6, 6)])
        assert p.bbox == Rect(0, 0, 6, 6)
        assert p.area == 8

    def test_contains_point(self):
        p = RectilinearPolygon([Rect(0, 0, 2, 2)])
        assert p.contains_point(Point(1, 1))
        assert not p.contains_point(Point(2, 2))

    def test_overlaps(self):
        a = RectilinearPolygon([Rect(0, 0, 4, 4)])
        b = RectilinearPolygon([Rect(3, 3, 6, 6)])
        c = RectilinearPolygon([Rect(4, 0, 6, 4)])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_gap_to(self):
        a = RectilinearPolygon([Rect(0, 0, 2, 2)])
        b = RectilinearPolygon([Rect(5, 0, 7, 2)])
        assert a.gap_to(b) == 3
        assert a.gap_to(a) == 0

    def test_translated(self):
        p = RectilinearPolygon([Rect(0, 0, 2, 2)]).translated(3, 4)
        assert p.bbox == Rect(3, 4, 5, 6)

    def test_connectivity(self):
        connected = RectilinearPolygon([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        assert connected.is_connected()
        disconnected = RectilinearPolygon([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)])
        assert not disconnected.is_connected()

    def test_corner_touch_is_not_connected(self):
        p = RectilinearPolygon([Rect(0, 0, 2, 2), Rect(2, 2, 4, 4)])
        assert not p.is_connected()

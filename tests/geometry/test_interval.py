"""Unit tests for repro.geometry.interval."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Interval, IntervalSet


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(GeometryError):
            Interval(5, 5)
        with pytest.raises(GeometryError):
            Interval(6, 5)

    def test_length(self):
        assert Interval(2, 9).length == 7

    def test_contains_half_open(self):
        iv = Interval(2, 5)
        assert iv.contains(2)
        assert iv.contains(4)
        assert not iv.contains(5)

    def test_overlaps_excludes_touching(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))

    def test_touches_or_overlaps_includes_touching(self):
        assert Interval(0, 5).touches_or_overlaps(Interval(5, 9))
        assert not Interval(0, 5).touches_or_overlaps(Interval(6, 9))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 9)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(7, 9)) == Interval(0, 9)

    def test_gap_to(self):
        assert Interval(0, 5).gap_to(Interval(8, 9)) == 3
        assert Interval(8, 9).gap_to(Interval(0, 5)) == 3
        assert Interval(0, 5).gap_to(Interval(4, 9)) == 0
        assert Interval(0, 5).gap_to(Interval(5, 9)) == 0

    def test_shifted(self):
        assert Interval(1, 4).shifted(10) == Interval(11, 14)

    def test_expanded(self):
        assert Interval(5, 7).expanded(2) == Interval(3, 9)
        with pytest.raises(GeometryError):
            Interval(5, 7).expanded(-1)


class TestIntervalSet:
    def test_normalisation_merges_overlaps_and_touching(self):
        s = IntervalSet([Interval(0, 3), Interval(3, 5), Interval(4, 8), Interval(10, 12)])
        assert s.spans() == [(0, 8), (10, 12)]

    def test_total_length(self):
        s = IntervalSet([Interval(0, 3), Interval(10, 12)])
        assert s.total_length == 5

    def test_equality_is_canonical(self):
        a = IntervalSet([Interval(0, 2), Interval(2, 4)])
        b = IntervalSet([Interval(0, 4)])
        assert a == b
        assert hash(a) == hash(b)

    def test_contains_binary_search(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 9), Interval(20, 21)])
        assert s.contains(0)
        assert not s.contains(2)
        assert s.contains(8)
        assert s.contains(20)
        assert not s.contains(21)
        assert not s.contains(-1)

    def test_union(self):
        a = IntervalSet([Interval(0, 2)])
        b = IntervalSet([Interval(1, 5)])
        assert a.union(b).spans() == [(0, 5)]

    def test_subtract_middle(self):
        a = IntervalSet([Interval(0, 10)])
        b = IntervalSet([Interval(3, 6)])
        assert a.subtract(b).spans() == [(0, 3), (6, 10)]

    def test_subtract_multiple_cuts(self):
        a = IntervalSet([Interval(0, 10), Interval(20, 30)])
        b = IntervalSet([Interval(2, 4), Interval(8, 22), Interval(29, 40)])
        assert a.subtract(b).spans() == [(0, 2), (4, 8), (22, 29)]

    def test_subtract_everything(self):
        a = IntervalSet([Interval(3, 5)])
        assert not a.subtract(IntervalSet([Interval(0, 10)]))

    def test_intersection(self):
        a = IntervalSet([Interval(0, 5), Interval(8, 12)])
        b = IntervalSet([Interval(4, 9)])
        assert a.intersection(b).spans() == [(4, 5), (8, 9)]

    def test_max_run_length(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 11)])
        assert s.max_run_length() == 6
        assert IntervalSet().max_run_length() == 0

    def test_empty_set_is_falsy(self):
        assert not IntervalSet()
        assert IntervalSet([Interval(0, 1)])

"""Unit tests for repro.geometry.rect."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 5)
        with pytest.raises(GeometryError):
            Rect(0, 5, 3, 5)

    def test_from_points_inflates_to_cells(self):
        r = Rect.from_points(Point(3, 1), Point(1, 4))
        assert r == Rect(1, 1, 4, 5)

    def test_from_center(self):
        assert Rect.from_center(Point(5, 5), 2, 3) == Rect(3, 2, 7, 8)


class TestMeasures:
    def test_width_height_area(self):
        r = Rect(1, 2, 4, 7)
        assert (r.width, r.height, r.area) == (3, 5, 15)

    def test_orientation(self):
        assert Rect(0, 0, 5, 1).is_horizontal
        assert not Rect(0, 0, 1, 5).is_horizontal
        assert Rect(0, 0, 2, 2).is_horizontal  # squares count as horizontal

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == (2.0, 1.0)

    def test_corners_ccw(self):
        r = Rect(0, 0, 2, 3)
        assert r.corners() == (Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3))


class TestPredicates:
    def test_contains_point_half_open(self):
        r = Rect(0, 0, 3, 3)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(3, 0))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 5, 5))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 11, 5))

    def test_overlaps_interiors_only(self):
        assert Rect(0, 0, 5, 5).overlaps(Rect(4, 4, 9, 9))
        assert not Rect(0, 0, 5, 5).overlaps(Rect(5, 0, 9, 5))

    def test_touches(self):
        assert Rect(0, 0, 5, 5).touches(Rect(5, 0, 9, 5))  # edge
        assert Rect(0, 0, 5, 5).touches(Rect(5, 5, 9, 9))  # corner
        assert not Rect(0, 0, 5, 5).touches(Rect(4, 4, 9, 9))  # overlap
        assert not Rect(0, 0, 5, 5).touches(Rect(6, 0, 9, 5))  # gap


class TestDistances:
    def test_gap_axes(self):
        a, b = Rect(0, 0, 5, 5), Rect(8, 9, 12, 12)
        assert a.gap_x(b) == 3
        assert a.gap_y(b) == 4

    def test_gap_zero_when_projections_overlap(self):
        a, b = Rect(0, 0, 5, 5), Rect(3, 9, 12, 12)
        assert a.gap_x(b) == 0

    def test_euclidean_gap_sq(self):
        a, b = Rect(0, 0, 5, 5), Rect(8, 9, 12, 12)
        assert a.euclidean_gap_sq(b) == 9 + 16

    def test_manhattan_gap(self):
        a, b = Rect(0, 0, 5, 5), Rect(8, 9, 12, 12)
        assert a.manhattan_gap(b) == 7


class TestConstructiveOps:
    def test_intersection(self):
        assert Rect(0, 0, 5, 5).intersection(Rect(3, 3, 9, 9)) == Rect(3, 3, 5, 5)
        assert Rect(0, 0, 5, 5).intersection(Rect(5, 5, 9, 9)) is None

    def test_hull(self):
        assert Rect(0, 0, 2, 2).hull(Rect(5, 5, 7, 7)) == Rect(0, 0, 7, 7)

    def test_inflated(self):
        assert Rect(2, 2, 4, 4).inflated(1) == Rect(1, 1, 5, 5)
        assert Rect(0, 0, 4, 4).inflated(-1) == Rect(1, 1, 3, 3)

    def test_translated(self):
        assert Rect(0, 0, 2, 2).translated(3, -1) == Rect(3, -1, 5, 1)

    def test_scaled(self):
        assert Rect(1, 2, 3, 4).scaled(10) == Rect(10, 20, 30, 40)
        with pytest.raises(GeometryError):
            Rect(1, 2, 3, 4).scaled(0)

    def test_subtract_no_overlap(self):
        r = Rect(0, 0, 5, 5)
        assert r.subtract(Rect(6, 6, 9, 9)) == (r,)

    def test_subtract_hole_in_middle(self):
        pieces = Rect(0, 0, 10, 10).subtract(Rect(3, 3, 6, 6))
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == 100 - 9
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.overlaps(b)

    def test_subtract_full_cover(self):
        assert Rect(2, 2, 4, 4).subtract(Rect(0, 0, 10, 10)) == ()

    def test_cells_enumeration(self):
        cells = list(Rect(0, 0, 2, 3).cells())
        assert len(cells) == 6
        assert Point(1, 2) in cells

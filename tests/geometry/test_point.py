"""Unit tests for repro.geometry.point."""

import pytest

from repro.geometry import Point
from repro.geometry.point import MANHATTAN_STEPS


class TestPointBasics:
    def test_iteration_unpacks_coordinates(self):
        x, y = Point(3, 7)
        assert (x, y) == (3, 7)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_equality_and_hash(self):
        assert Point(2, 3) == Point(2, 3)
        assert len({Point(2, 3), Point(2, 3), Point(3, 2)}) == 2

    def test_addition_and_subtraction(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_negation(self):
        assert -Point(2, -5) == Point(-2, 5)

    def test_scaled(self):
        assert Point(2, -3).scaled(4) == Point(8, -12)

    def test_translated(self):
        assert Point(1, 1).translated(-3, 2) == Point(-2, 3)


class TestPointMetrics:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_manhattan_is_symmetric(self):
        a, b = Point(-2, 5), Point(4, -1)
        assert a.manhattan(b) == b.manhattan(a)

    def test_chebyshev_distance(self):
        assert Point(0, 0).chebyshev(Point(3, 4)) == 4

    def test_euclidean_sq(self):
        assert Point(0, 0).euclidean_sq(Point(3, 4)) == 25

    def test_alignment(self):
        assert Point(3, 5).is_aligned_with(Point(3, 9))
        assert Point(3, 5).is_aligned_with(Point(8, 5))
        assert not Point(3, 5).is_aligned_with(Point(4, 6))


def test_manhattan_steps_are_unit_and_distinct():
    assert len(set(MANHATTAN_STEPS)) == 4
    origin = Point(0, 0)
    for step in MANHATTAN_STEPS:
        assert origin.manhattan(origin + step) == 1

"""GC policy, metadata index, and cache-dir resolution."""

import time

from repro import obs
from repro.pipeline import ArtifactStore, GridArtifact, default_cache_dir
from repro.pipeline.store import INDEX_FILE


def _put(store, hash, payload_bytes=0):
    art = GridArtifact(
        {"width": 2, "height": 2, "num_layers": 1, "pad": "x" * payload_bytes}
    )
    art.hash = hash
    store.save(art, "build_grid")


class TestCacheDirResolution:
    def test_default_is_dot_repro_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro_cache"

    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == str(tmp_path / "elsewhere")

    def test_empty_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert default_cache_dir() == ".repro_cache"

    def test_pipeline_config_picks_up_env(self, monkeypatch, tmp_path):
        from repro.pipeline import PipelineConfig

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        config = PipelineConfig(circuit="Test1", scale=0.1)
        assert config.cache_dir == str(tmp_path / "envcache")


class TestMetadataIndex:
    def test_hits_and_tenant_tracked(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", tenant="acme")
        _put(store, "aaa")
        store.load("aaa")
        store.load("aaa")
        (entry,) = store.entries()
        assert entry.tenant == "acme"
        assert entry.hits == 2
        assert entry.last_used_unix > 0

    def test_index_is_disposable(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put(store, "bbb")
        (tmp_path / "cache" / INDEX_FILE).unlink()
        assert store.load("bbb") is not None
        (entry,) = store.entries()
        assert entry.hash == "bbb"
        assert entry.hits == 0  # derived metadata is lost, artifacts are not


class TestGC:
    def test_no_bounds_is_noop(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put(store, "keep")
        assert store.gc() == 0
        assert store.has("keep")

    def test_max_age_drops_stale_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put(store, "old")
        _put(store, "new")
        # Backdate "old" in its record; drop the index so age falls back
        # to record timestamps (a cache inherited without its index).
        import json

        path = tmp_path / "cache" / "old.json"
        stale = time.time() - 10 * 86400
        rec = json.loads(path.read_text())
        rec["created_unix"] = stale
        path.write_text(json.dumps(rec, sort_keys=True))
        (tmp_path / "cache" / INDEX_FILE).unlink()
        with obs.session() as ob:
            assert store.gc(max_age_days=7) == 1
            assert ob.registry.total("store_gc_removed_total") == 1
        assert not store.has("old")
        assert store.has("new")

    def test_max_bytes_evicts_lru_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put(store, "cold", payload_bytes=4000)
        _put(store, "warm", payload_bytes=4000)
        time.sleep(0.02)
        store.load("warm")  # bump hit + last_used
        total = sum(e.bytes for e in store.entries())
        removed = store.gc(max_bytes=total - 1)
        assert removed == 1
        assert not store.has("cold")
        assert store.has("warm")

    def test_gc_within_budget_keeps_all(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put(store, "a")
        _put(store, "b")
        assert store.gc(max_bytes=10**9, max_age_days=365) == 0
        assert len(store.entries()) == 2

"""Multi-process stress tests for the shared artifact store.

The routing service points N worker processes at one ``.repro_cache/``;
these tests drive the same contention patterns directly: many writers
racing on one key (compare-and-publish + single-flight dedup) and many
writers on distinct keys (no lost entries), asserting the store ends up
uncorrupted either way.
"""

import json
import multiprocessing as mp
import time

import pytest

from repro.pipeline import ArtifactStore, GridArtifact

PROCESSES = 6  # acceptance floor is 4; a bit more contention is free


def _requires_fork():
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return mp.get_context("fork")


def _grid(hash: str, width: int = 5) -> GridArtifact:
    art = GridArtifact({"width": width, "height": 5, "num_layers": 1})
    art.hash = hash
    return art


def _same_key_worker(root, key, barrier, results):
    store = ArtifactStore(root)
    barrier.wait()  # line everyone up on the race
    computed = False
    with store.single_flight(key, timeout_s=30.0) as leader:
        if store.load(key) is None:
            time.sleep(0.05)  # widen the window a follower could sneak into
            store.publish(_grid(key), "build_grid")
            computed = True
    results.put((leader, computed))


def _distinct_keys_worker(root, writer_no, keys_per_writer, barrier, results):
    store = ArtifactStore(root, tenant=f"w{writer_no}")
    barrier.wait()
    for k in range(keys_per_writer):
        store.publish(_grid(f"w{writer_no}k{k}", width=writer_no + 1), "build_grid")
    results.put(writer_no)


def _raw_publish_worker(root, key, barrier, results):
    store = ArtifactStore(root)
    barrier.wait()
    nbytes, created = store.publish(_grid(key), "build_grid")
    results.put(created)


def _run_workers(ctx, target, root, count, extra_args):
    barrier = ctx.Barrier(count)
    results = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(root, *extra_args(i), barrier, results))
        for i in range(count)
    ]
    for p in procs:
        p.start()
    out = [results.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    return out


class TestSameKeyContention:
    def test_single_flight_dedups_to_one_computation(self, tmp_path):
        ctx = _requires_fork()
        root = str(tmp_path / "cache")
        out = _run_workers(
            ctx, _same_key_worker, root, PROCESSES, lambda i: ("sharedkey",)
        )
        computed = sum(1 for _, c in out if c)
        assert computed == 1, f"expected one leader computation, saw {computed}"
        store = ArtifactStore(root)
        art = store.load("sharedkey")
        assert art is not None and art.payload["width"] == 5
        # exactly one entry, no stray temp files
        assert [e.hash for e in store.entries()] == ["sharedkey"]
        assert list((tmp_path / "cache").glob("*.tmp")) == []

    def test_raw_publish_race_leaves_one_valid_entry(self, tmp_path):
        """Even without single-flight, compare-and-publish must converge:
        racing writers of one hash leave exactly one parseable file."""
        ctx = _requires_fork()
        root = str(tmp_path / "cache")
        out = _run_workers(
            ctx, _raw_publish_worker, root, PROCESSES, lambda i: ("racedkey",)
        )
        assert any(out), "at least one writer must report a fresh publish"
        path = tmp_path / "cache" / "racedkey.json"
        record = json.loads(path.read_text())  # parses ⇒ not torn
        assert record["hash"] == "racedkey"
        assert ArtifactStore(root).load("racedkey") is not None


class TestDistinctKeys:
    def test_no_lost_entries(self, tmp_path):
        ctx = _requires_fork()
        root = str(tmp_path / "cache")
        keys_per_writer = 4
        _run_workers(
            ctx,
            _distinct_keys_worker,
            root,
            PROCESSES,
            lambda i: (i, keys_per_writer),
        )
        store = ArtifactStore(root)
        entries = store.entries()
        expected = {
            f"w{w}k{k}" for w in range(PROCESSES) for k in range(keys_per_writer)
        }
        assert {e.hash for e in entries} == expected
        for e in entries:
            art = store.load(e.hash)
            assert art is not None
            assert art.payload["width"] == int(e.hash[1 : e.hash.index("k")]) + 1

"""Golden end-to-end pipeline tests on the Test1 benchmark.

Pins down the refactor's contract: the staged pipeline produces the same
routing result and report text as the legacy live-router path, artifact
hashes are stable across runs, and a cached re-run does zero routing or
decomposition work (asserted through the span tracer).
"""

import pytest

from repro import obs
from repro.analysis import analyze
from repro.bench.workloads import generate_benchmark, spec_by_name
from repro.pipeline import ALL_STAGES, Pipeline, PipelineConfig
from repro.router import SadpRouter
from repro.router.io import result_to_dict

SCALE = 0.1


@pytest.fixture
def config(tmp_path):
    return PipelineConfig(
        circuit="Test1", scale=SCALE, cache_dir=str(tmp_path / "cache")
    )


def _zero_cpu(result_dict):
    """Wall-clock cpu_seconds differs between live runs; everything else
    must be byte-identical."""
    out = dict(result_dict)
    out["metrics"] = dict(out.get("metrics", {}), cpu_seconds=0.0)
    return out


class TestGolden:
    def test_hashes_stable_across_runs(self, config):
        first = Pipeline(config).run()
        second = Pipeline(config).run()
        assert {k: a.hash for k, a in first.artifacts.items()} == {
            k: a.hash for k, a in second.artifacts.items()
        }
        assert second.status_line() == "pipeline: 0 run, 6 cached"

    def test_cached_run_does_no_routing_work(self, config):
        Pipeline(config).run()
        with obs.session() as ob:
            run = Pipeline(config).run()
        assert run.executed_count == 0
        assert ob.tracer.spans_named("stage:route") == []
        assert ob.tracer.spans_named("stage:decompose") == []
        assert ob.tracer.spans_named("route_net") == []
        assert ob.registry.total("pipeline_cache_hits_total") == len(ALL_STAGES)

    def test_executed_run_opens_stage_spans(self, config):
        with obs.session() as ob:
            Pipeline(config).run()
        for name in ALL_STAGES:
            spans = ob.tracer.spans_named(f"stage:{name}")
            assert len(spans) == 1
            assert spans[0].attrs.get("hashes")
            assert spans[0].attrs.get("bytes", 0) > 0

    def test_result_matches_legacy_live_routing(self, config):
        run = Pipeline(config).run(targets=("report",))
        pipelined = run.artifact("routing").result()

        spec = spec_by_name("Test1")
        grid, nets = generate_benchmark(spec, scale=SCALE, seed=config.seed)
        router = SadpRouter(grid, nets)
        live = router.route_all()

        assert _zero_cpu(result_to_dict(pipelined)) == _zero_cpu(
            result_to_dict(live)
        )
        # The serialized report renders byte-identically to the live
        # analyze() path (instrumentation is run-local on both sides).
        assert run.artifact("report").report().to_text() == analyze(
            router, live
        ).to_text()

    def test_cached_result_identical_to_first_run(self, config):
        first = Pipeline(config).run(targets=("route",))
        second = Pipeline(config).run(targets=("route",))
        assert result_to_dict(second.artifact("routing").result()) == result_to_dict(
            first.artifact("routing").result()
        )

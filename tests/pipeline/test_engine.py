"""Engine semantics: hashing, cache hits, targets, force, resume."""

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    ALL_STAGES,
    Artifact,
    MemoryStore,
    Pipeline,
    PipelineConfig,
    Stage,
    default_stages,
)


def _config(tmp_path, **overrides):
    defaults = dict(circuit="Test1", scale=0.1, cache_dir=str(tmp_path / "cache"))
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        pipe = Pipeline(_config(tmp_path))
        first = pipe.run()
        second = pipe.run()
        assert first.executed_count == len(ALL_STAGES)
        assert second.executed_count == 0
        assert second.cached_count == len(ALL_STAGES)
        for kind, art in first.artifacts.items():
            assert second.artifacts[kind].hash == art.hash

    def test_force_reexecutes_everything(self, tmp_path):
        pipe = Pipeline(_config(tmp_path))
        pipe.run()
        forced = pipe.run(force=True)
        assert forced.executed_count == len(ALL_STAGES)
        assert forced.cached_count == 0

    def test_route_config_change_keeps_design_prefix(self, tmp_path):
        pipe = Pipeline(_config(tmp_path))
        first = pipe.run()
        other = Pipeline(_config(tmp_path, gamma=2.5))
        second = other.run()
        by_name = {r.name: r for r in second.records}
        assert by_name["load_design"].status == "hit"
        assert by_name["build_grid"].status == "hit"
        assert by_name["route"].status == "run"
        assert by_name["decompose"].status == "run"
        assert (
            second.artifacts["design"].hash == first.artifacts["design"].hash
        )
        assert second.artifacts["routing"].hash != first.artifacts["routing"].hash

    def test_workers_do_not_change_hashes(self, tmp_path):
        first = Pipeline(_config(tmp_path, workers=1)).run()
        second = Pipeline(_config(tmp_path, workers=2)).run()
        assert second.executed_count == 0
        assert second.artifacts["routing"].hash == first.artifacts["routing"].hash

    def test_kernel_does_not_change_hashes(self, tmp_path):
        """The compiled kernel is bit-identical to the python path, so
        ``kernel`` stays out of every stage hash — all three modes share
        one routing artifact."""
        first = Pipeline(_config(tmp_path, kernel="python")).run()
        for mode in ("auto", "numba"):
            again = Pipeline(_config(tmp_path, kernel=mode)).run()
            assert again.executed_count == 0
            assert (
                again.artifacts["routing"].hash
                == first.artifacts["routing"].hash
            )

    def test_memory_store_isolated_per_instance(self, tmp_path):
        config = _config(tmp_path)
        a = Pipeline(config, store=MemoryStore()).run(targets=("route",))
        b = Pipeline(config, store=MemoryStore()).run(targets=("route",))
        assert a.executed_count == b.executed_count == 3


class TestTargets:
    def test_route_target_skips_downstream(self, tmp_path):
        run = Pipeline(_config(tmp_path)).run(targets=("route",))
        assert [r.name for r in run.records] == ["load_design", "build_grid", "route"]
        assert "mask" not in run.artifacts
        with pytest.raises(PipelineError, match="mask"):
            run.artifact("mask")
        assert run.artifact("routing").result().routed_count > 0

    def test_report_target_skips_decompose(self, tmp_path):
        run = Pipeline(_config(tmp_path)).run(targets=("report",))
        names = [r.name for r in run.records]
        assert "decompose" not in names and "verify" not in names
        assert run.artifact("report").report().num_nets > 0

    def test_unknown_target_rejected(self, tmp_path):
        with pytest.raises(PipelineError, match="unknown stage"):
            Pipeline(_config(tmp_path)).run(targets=("polish",))


class TestPlanAndResume:
    def test_plan_matches_run(self, tmp_path):
        pipe = Pipeline(_config(tmp_path))
        before = pipe.plan()
        assert all(r.status == "pending" for r in before)
        run = pipe.run()
        after = pipe.plan()
        assert all(r.status == "hit" for r in after)
        for planned, executed in zip(after, run.records):
            assert planned.hashes == executed.hashes

    def test_failed_stage_resumes_after_prefix(self, tmp_path):
        class BoomStage(Stage):
            name = "decompose"
            version = "1"
            inputs = ("grid", "routing", "coloring")
            outputs = ("mask",)
            calls = 0

            def run(self, config, inputs, context):
                type(self).calls += 1
                raise PipelineError("boom", stage=self.name)

        stages = [
            BoomStage() if s.name == "decompose" else s for s in default_stages()
        ]
        config = _config(tmp_path)
        with pytest.raises(PipelineError, match="boom"):
            Pipeline(config, stages=stages).run()
        # The prefix is cached: a healthy pipeline resumes at decompose.
        run = Pipeline(config).run()
        by_name = {r.name: r for r in run.records}
        assert by_name["load_design"].status == "hit"
        assert by_name["route"].status == "hit"
        assert by_name["decompose"].status == "run"

    def test_stage_error_names_stage(self, tmp_path):
        config = PipelineConfig(
            netlist=str(tmp_path / "missing.txt"),
            width=8,
            height=8,
            cache_dir=str(tmp_path / "cache"),
        )
        with pytest.raises(PipelineError) as err:
            Pipeline(config).run(targets=("load_design",))
        assert err.value.stage == "load_design"
        assert "missing.txt" in str(err.value)


class TestValidation:
    def test_config_requires_one_source(self, tmp_path):
        with pytest.raises(PipelineError, match="design source"):
            Pipeline(PipelineConfig(cache_dir=str(tmp_path)))
        with pytest.raises(PipelineError, match="design source"):
            Pipeline(
                PipelineConfig(
                    netlist="a.txt", circuit="Test1", width=4, height=4,
                    cache_dir=str(tmp_path),
                )
            )

    def test_netlist_needs_dimensions(self, tmp_path):
        with pytest.raises(PipelineError, match="dimensions"):
            Pipeline(PipelineConfig(netlist="a.txt", cache_dir=str(tmp_path)))

    def test_unknown_router_rejected(self, tmp_path):
        with pytest.raises(PipelineError, match="unknown router"):
            Pipeline(
                PipelineConfig(circuit="Test1", router="magic", cache_dir=str(tmp_path))
            )

    def test_duplicate_producer_rejected(self, tmp_path):
        class Dup(Stage):
            name = "dup"
            outputs = ("design",)

        with pytest.raises(PipelineError, match="two stages"):
            Pipeline(
                _config(tmp_path), stages=list(default_stages()) + [Dup()]
            )

    def test_missing_output_detected(self, tmp_path):
        class Lazy(Stage):
            name = "load_design"
            outputs = ("design",)

            def run(self, config, inputs, context):
                return {}

        stages = [Lazy() if s.name == "load_design" else s for s in default_stages()]
        with pytest.raises(PipelineError, match="did not produce"):
            Pipeline(_config(tmp_path), stages=stages).run(targets=("load_design",))

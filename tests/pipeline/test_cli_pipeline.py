"""CLI surface of ``repro pipeline run/show/clean``."""

import pytest

from repro.cli import main

NETLIST_TEXT = """\
a L0 2,10 -> L0 20,10
b L0 2,11 -> L0 20,11
"""


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "nets.txt"
    path.write_text(NETLIST_TEXT)
    return path


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _run_args(design, cache_dir, *extra):
    return ["pipeline", "run", design, "--cache-dir", cache_dir, *extra]


class TestPipelineRun:
    def test_benchmark_runs_then_caches(self, cache_dir, capsys):
        rc = main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        first = capsys.readouterr().out
        assert rc == 0
        assert "pipeline: 6 run, 0 cached" in first
        assert "routed" in first
        assert "decomposition:" in first

        rc = main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        second = capsys.readouterr().out
        assert rc == 0
        assert "pipeline: 0 run, 6 cached" in second

    def test_netlist_design(self, netlist_file, cache_dir, capsys):
        rc = main(
            _run_args(str(netlist_file), cache_dir, "--width", "30", "--height", "30")
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "routed 2/2" in out

    def test_force_reruns(self, cache_dir, capsys):
        main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        capsys.readouterr()
        rc = main(_run_args("Test1", cache_dir, "--scale", "0.1", "--force"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "pipeline: 6 run, 0 cached" in out

    def test_report_and_svg(self, cache_dir, tmp_path, capsys):
        svg = tmp_path / "m1.svg"
        rc = main(
            _run_args(
                "Test1", cache_dir, "--scale", "0.1", "--report", "--svg", str(svg)
            )
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Routing report" in out
        assert svg.read_text().startswith("<svg")

    def test_unknown_design_is_clean_error(self, cache_dir, capsys):
        rc = main(_run_args("nosuchthing", cache_dir))
        err = capsys.readouterr().err
        assert rc == 2
        assert "nosuchthing" in err


class TestPipelineShowClean:
    def test_show_empty_store(self, cache_dir, capsys):
        rc = main(["pipeline", "show", "--cache-dir", cache_dir])
        assert rc == 0
        assert "empty" in capsys.readouterr().out

    def test_show_plan_and_store(self, cache_dir, capsys):
        main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        capsys.readouterr()
        rc = main(
            ["pipeline", "show", "Test1", "--scale", "0.1", "--cache-dir", cache_dir]
        )
        plan = capsys.readouterr().out
        assert rc == 0
        assert plan.count("hit") == 6

        rc = main(["pipeline", "show", "--cache-dir", cache_dir])
        listing = capsys.readouterr().out
        assert rc == 0
        assert "7 artifacts" in listing

    def test_clean(self, cache_dir, capsys):
        main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        capsys.readouterr()
        rc = main(["pipeline", "clean", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "removed 7 artifacts" in out
        rc = main(["pipeline", "show", "--cache-dir", cache_dir])
        assert "empty" in capsys.readouterr().out


class TestGCFlags:
    def test_gc_within_budget_removes_nothing(self, cache_dir, capsys):
        main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        capsys.readouterr()
        rc = main(
            [
                "pipeline", "clean", "--cache-dir", cache_dir,
                "--max-age-days", "30", "--max-bytes", str(10**9),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "gc removed 0 artifacts" in out
        rc = main(["pipeline", "show", "--cache-dir", cache_dir])
        assert "empty" not in capsys.readouterr().out

    def test_gc_tiny_budget_evicts(self, cache_dir, capsys):
        main(_run_args("Test1", cache_dir, "--scale", "0.1"))
        capsys.readouterr()
        rc = main(
            ["pipeline", "clean", "--cache-dir", cache_dir, "--max-bytes", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "gc removed 7 artifacts" in out


class TestCacheDirEnv:
    def test_env_var_locates_the_store(self, tmp_path, monkeypatch, capsys):
        envcache = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(envcache))
        rc = main(["pipeline", "run", "Test1", "--scale", "0.1"])
        assert rc == 0
        assert envcache.is_dir() and list(envcache.glob("*.json"))
        capsys.readouterr()
        rc = main(["pipeline", "show"])
        out = capsys.readouterr().out
        assert rc == 0
        assert str(envcache) in out

    def test_explicit_flag_beats_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        explicit = tmp_path / "explicit"
        rc = main(
            ["pipeline", "run", "Test1", "--scale", "0.1", "--cache-dir", str(explicit)]
        )
        assert rc == 0
        assert explicit.is_dir()
        assert not (tmp_path / "ignored").exists()

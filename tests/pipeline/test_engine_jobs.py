"""Job-oriented engine surface: progress events, cancellation, coalescing."""

import pytest

from repro.errors import PipelineCancelled
from repro.pipeline import ALL_STAGES, Pipeline, PipelineConfig


def _config(tmp_path, **overrides):
    defaults = dict(circuit="Test1", scale=0.1, cache_dir=str(tmp_path / "cache"))
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestProgressEvents:
    def test_every_stage_emits_start_and_end(self, tmp_path):
        events = []
        Pipeline(_config(tmp_path)).run(progress=events.append)
        starts = [e for e in events if e["event"] == "stage_start"]
        ends = [e for e in events if e["event"] == "stage_end"]
        assert [e["stage"] for e in starts] == list(ALL_STAGES)
        assert [e["stage"] for e in ends] == list(ALL_STAGES)
        for i, e in enumerate(starts):
            assert e["span"] == f"stage:{e['stage']}"
            assert e["index"] == i
            assert e["total"] == len(ALL_STAGES)
        for e in ends:
            assert e["status"] == "run"
            assert e["seconds"] >= 0
            assert e["hashes"]

    def test_cached_run_reports_hits(self, tmp_path):
        pipe = Pipeline(_config(tmp_path))
        pipe.run()
        events = []
        pipe.run(progress=events.append)
        ends = [e for e in events if e["event"] == "stage_end"]
        assert all(e["status"] == "hit" for e in ends)

    def test_progress_is_optional(self, tmp_path):
        run = Pipeline(_config(tmp_path)).run()
        assert run.executed_count == len(ALL_STAGES)


class TestCancellation:
    def test_cancel_before_first_stage(self, tmp_path):
        with pytest.raises(PipelineCancelled):
            Pipeline(_config(tmp_path)).run(cancel=lambda: True)

    def test_cancel_mid_run_keeps_prefix(self, tmp_path):
        """Cancelling after two stages leaves their artifacts published,
        so the resubmitted job resumes from the cache."""
        seen = []

        def cancel():
            return len(seen) >= 2

        def progress(event):
            if event["event"] == "stage_end":
                seen.append(event["stage"])

        config = _config(tmp_path)
        with pytest.raises(PipelineCancelled):
            Pipeline(config).run(progress=progress, cancel=cancel)
        assert seen == ["load_design", "build_grid"]

        resumed = Pipeline(config).run()
        by_name = {r.name: r for r in resumed.records}
        assert by_name["load_design"].status == "hit"
        assert by_name["build_grid"].status == "hit"
        assert by_name["route"].status == "run"

    def test_cancelled_is_a_pipeline_error(self, tmp_path):
        from repro.errors import PipelineError

        assert issubclass(PipelineCancelled, PipelineError)


class _RacingStore:
    """Delegates to a pre-warmed store but fakes a lost race: the first
    lookup of every hash misses (as it would before a concurrent leader
    published), later lookups see the real entry."""

    def __init__(self, real, leader):
        self._real = real
        self._leader = leader
        self._seen = set()

    def has(self, hash):
        return self._real.has(hash)

    def load(self, hash):
        if hash not in self._seen:
            self._seen.add(hash)
            return None
        return self._real.load(hash)

    def save(self, artifact, stage):
        return self._real.save(artifact, stage)

    def single_flight(self, key, timeout_s=600.0):
        from contextlib import contextmanager

        @contextmanager
        def flight():
            yield self._leader

        return flight()


class TestSingleFlight:
    def test_follower_coalesces_instead_of_recomputing(self, tmp_path):
        """A follower that waited a leader out re-checks the cache and
        reports ``coalesced`` — no stage execution, still a cached run."""
        from repro import obs

        config = _config(tmp_path)
        warmed = Pipeline(config)
        warmed.run()  # what the concurrent leader would have published
        with obs.session() as ob:
            run = Pipeline(config, store=_RacingStore(warmed.store, leader=False)).run()
            assert all(r.status == "coalesced" for r in run.records)
            assert run.executed_count == 0
            assert run.cached_count == len(ALL_STAGES)
            assert ob.registry.total("pipeline_singleflight_coalesced_total") == len(
                ALL_STAGES
            )
            assert not [s for s in ob.tracer.finished if s.name == "stage:route"]

    def test_leader_double_check_inside_lock(self, tmp_path):
        """A leader that wins the lock after another process published
        (miss → lock → re-check) downgrades to a plain hit."""
        config = _config(tmp_path)
        warmed = Pipeline(config)
        warmed.run()
        run = Pipeline(config, store=_RacingStore(warmed.store, leader=True)).run()
        assert all(r.status == "hit" for r in run.records)
        assert run.executed_count == 0

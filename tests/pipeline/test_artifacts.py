"""Round-trip tests for typed artifacts and the two stores."""

import numpy as np
import pytest

from repro.color import Color
from repro.decompose import routing_to_targets, synthesize_masks
from repro.decompose.bitmap import Bitmap
from repro.errors import PipelineError
from repro.geometry import Rect
from repro.pipeline import (
    ArtifactStore,
    DesignArtifact,
    GridArtifact,
    MemoryStore,
    Pipeline,
    PipelineConfig,
    mask_set_from_dict,
    mask_set_to_dict,
    replay_onto_grid,
)
from repro.pipeline.artifacts import (
    _decode_bitmap,
    _encode_bitmap,
    artifact_from_record,
)


def _run(tmp_path, **overrides):
    config = PipelineConfig(circuit="Test1", scale=0.1, cache_dir=str(tmp_path), **overrides)
    return Pipeline(config).run()


class TestBitmapCodec:
    def test_roundtrip_preserves_bits(self):
        rng = np.random.default_rng(7)
        window = Rect(0, 0, 640, 480)
        data = rng.random((64, 48)) > 0.5
        bmp = Bitmap(window, 10, data=data)
        rec = _encode_bitmap(bmp)
        back = _decode_bitmap(window, 10, rec)
        assert np.array_equal(back.data, data)
        assert back.window == window

    def test_non_multiple_of_eight_shape(self):
        window = Rect(0, 0, 130, 70)
        data = np.zeros((13, 7), dtype=bool)
        data[3, 5] = True
        data[12, 6] = True
        back = _decode_bitmap(window, 10, _encode_bitmap(Bitmap(window, 10, data=data)))
        assert np.array_equal(back.data, data)


class TestMaskSetRoundtrip:
    def test_roundtrip(self, tmp_path):
        run = _run(tmp_path)
        grid = run.artifact("grid").build()
        result = run.artifact("routing").result()
        targets = routing_to_targets(grid, result, 0)
        masks = synthesize_masks(targets, grid.rules)
        back = mask_set_from_dict(mask_set_to_dict(masks))
        assert back.window == masks.window
        assert back.resolution == masks.resolution
        assert back.rules == masks.rules
        assert len(back.targets) == len(masks.targets)
        for mine, theirs in zip(back.targets, masks.targets):
            assert mine == theirs
        for name in ("target_bmp", "core_mask", "spacer", "cut_mask", "printed"):
            assert np.array_equal(getattr(back, name).data, getattr(masks, name).data)


class TestArtifactAccessors:
    def test_design_parses_netlist(self, tmp_path):
        run = _run(tmp_path)
        design = run.artifact("design")
        assert isinstance(design, DesignArtifact)
        netlist = design.netlist()
        assert len(netlist) == len(run.artifact("routing").result().routes)

    def test_grid_build_applies_blockages(self):
        from repro.geometry import Point
        from repro.grid.routing_grid import CellState

        art = GridArtifact(
            {"width": 10, "height": 10, "num_layers": 2, "blockages": [[0, 2, 2, 4, 4]]}
        )
        grid = art.build()
        assert grid.width == 10 and grid.num_layers == 2
        assert grid.owner(0, Point(3, 3)) == CellState.BLOCKED
        assert grid.owner(1, Point(3, 3)) == CellState.FREE

    def test_coloring_artifact_typed_keys(self, tmp_path):
        run = _run(tmp_path)
        colorings = run.artifact("coloring").colorings()
        for layer, per_net in colorings.items():
            assert isinstance(layer, int)
            for net, color in per_net.items():
                assert isinstance(net, int)
                assert isinstance(color, Color)

    def test_replay_matches_result(self, tmp_path):
        run = _run(tmp_path)
        result = run.artifact("routing").result()
        grid = replay_onto_grid(run.artifact("grid").build(), result)
        net_id, seg = next(
            (nid, s)
            for nid, r in sorted(result.routes.items())
            if r.success
            for s in r.segments
        )
        for p in seg.points():
            assert grid.owner(seg.layer, p) == net_id

    def test_unknown_kind_rejected(self):
        with pytest.raises(PipelineError):
            artifact_from_record({"kind": "nope", "payload": {}})


class TestStores:
    def test_artifact_store_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        art = DesignArtifact({"netlist_text": "x", "width": 3, "height": 3, "num_layers": 1})
        art.hash = "abc123"
        nbytes = store.save(art, "load_design")
        assert nbytes > 0
        assert store.has("abc123")
        back = store.load("abc123")
        assert isinstance(back, DesignArtifact)
        assert back.payload == art.payload
        assert store.load("missing") is None

    def test_corrupt_file_is_skipped_with_warning(self, tmp_path):
        """A half-written entry (killed writer) is a miss, never fatal:
        the stage re-runs and republishes over it."""
        from repro import obs

        store = ArtifactStore(tmp_path / "cache")
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "deadbeef.json").write_text("{not json")
        with obs.session() as ob:
            with pytest.warns(RuntimeWarning, match="corrupt artifact"):
                assert store.load("deadbeef") is None
            with pytest.warns(RuntimeWarning, match="corrupt artifact"):
                assert store.entries() == []
            assert ob.registry.total("store_corrupt_entries_total") == 2

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        art = GridArtifact({"width": 1, "height": 1, "num_layers": 1})
        art.hash = "h1"
        store.save(art, "build_grid")
        path = tmp_path / "cache" / "h1.json"
        path.write_text(path.read_text().replace('"schema": 1', '"schema": 999'))
        assert store.load("h1") is None

    def test_memory_store_entries_and_clean(self):
        store = MemoryStore()
        art = GridArtifact({"width": 1, "height": 1, "num_layers": 1})
        art.hash = "h2"
        store.save(art, "build_grid")
        entries = store.entries()
        assert len(entries) == 1 and entries[0].kind == "grid"
        assert store.clean() == 1
        assert not store.has("h2")

    def test_store_clean_counts(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        for i in range(3):
            art = GridArtifact({"width": i + 1, "height": 1, "num_layers": 1})
            art.hash = f"h{i}"
            store.save(art, "build_grid")
        assert store.clean() == 3
        assert store.entries() == []

"""Unit tests for pins, nets, and the netlist container."""

import pytest

from repro.errors import NetlistError
from repro.geometry import Point
from repro.netlist import Net, Netlist, Pin


class TestPin:
    def test_fixed_pin(self):
        pin = Pin.at(3, 4, layer=1)
        assert pin.is_fixed
        assert pin.primary == Point(3, 4)
        assert pin.layer == 1

    def test_multi_candidate(self):
        pin = Pin.multi((Point(0, 0), Point(0, 1)))
        assert not pin.is_fixed
        assert pin.primary == Point(0, 0)

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            Pin(candidates=())

    def test_duplicates_rejected(self):
        with pytest.raises(NetlistError):
            Pin(candidates=(Point(0, 0), Point(0, 0)))

    def test_negative_layer_rejected(self):
        with pytest.raises(NetlistError):
            Pin(candidates=(Point(0, 0),), layer=-1)


class TestNet:
    def test_half_perimeter(self):
        net = Net(0, "n0", Pin.at(0, 0), Pin.at(3, 4))
        assert net.half_perimeter == 7

    def test_multi_candidate_flag(self):
        fixed = Net(0, "a", Pin.at(0, 0), Pin.at(1, 1))
        multi = Net(1, "b", Pin.multi((Point(0, 0), Point(0, 1))), Pin.at(5, 5))
        assert not fixed.is_multi_candidate
        assert multi.is_multi_candidate

    def test_invalid_net(self):
        with pytest.raises(NetlistError):
            Net(-1, "x", Pin.at(0, 0), Pin.at(1, 1))
        with pytest.raises(NetlistError):
            Net(0, "", Pin.at(0, 0), Pin.at(1, 1))


class TestNetlist:
    def _net(self, i, hp=1):
        return Net(i, f"n{i}", Pin.at(0, 0 if i == 0 else i), Pin.at(hp, 0 if i == 0 else i))

    def test_add_and_lookup(self):
        nl = Netlist([Net(0, "a", Pin.at(0, 0), Pin.at(1, 0))])
        assert len(nl) == 1
        assert nl.by_id(0).name == "a"
        assert nl.by_name("a").net_id == 0
        assert 0 in nl
        assert 1 not in nl

    def test_duplicate_id_rejected(self):
        nl = Netlist([Net(0, "a", Pin.at(0, 0), Pin.at(1, 0))])
        with pytest.raises(NetlistError):
            nl.add(Net(0, "b", Pin.at(0, 2), Pin.at(1, 2)))

    def test_duplicate_name_rejected(self):
        nl = Netlist([Net(0, "a", Pin.at(0, 0), Pin.at(1, 0))])
        with pytest.raises(NetlistError):
            nl.add(Net(1, "a", Pin.at(0, 2), Pin.at(1, 2)))

    def test_missing_lookup(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.by_id(5)
        with pytest.raises(NetlistError):
            nl.by_name("ghost")

    def test_routing_order_shortest_first(self):
        long_net = Net(0, "long", Pin.at(0, 0), Pin.at(30, 0))
        short_net = Net(1, "short", Pin.at(0, 5), Pin.at(2, 5))
        nl = Netlist([long_net, short_net])
        assert [n.net_id for n in nl.ordered_for_routing()] == [1, 0]

    def test_routing_order_tie_breaks_by_id(self):
        a = Net(3, "a", Pin.at(0, 0), Pin.at(2, 0))
        b = Net(1, "b", Pin.at(0, 5), Pin.at(2, 5))
        nl = Netlist([a, b])
        assert [n.net_id for n in nl.ordered_for_routing()] == [1, 3]

    def test_total_half_perimeter(self):
        nl = Netlist(
            [
                Net(0, "a", Pin.at(0, 0), Pin.at(3, 0)),
                Net(1, "b", Pin.at(0, 5), Pin.at(0, 9)),
            ]
        )
        assert nl.total_half_perimeter() == 7

    def test_multi_candidate_count(self):
        nl = Netlist(
            [
                Net(0, "a", Pin.at(0, 0), Pin.at(3, 0)),
                Net(1, "b", Pin.multi((Point(0, 5), Point(1, 5))), Pin.at(0, 9)),
            ]
        )
        assert nl.multi_candidate_count() == 1

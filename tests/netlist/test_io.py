"""Unit tests for netlist text I/O."""

import pytest

from repro.errors import NetlistError
from repro.geometry import Point
from repro.netlist import read_netlist, write_netlist
from repro.netlist.io import parse_netlist


SAMPLE = """
# comment line
n0 L0 1,2 -> L0 9,2
n1 L0 4,4 -> L1 4,11   # trailing comment

n2 L0 0,0;0,1 -> L0 7,7;8,7;9,7
"""


class TestParse:
    def test_parses_nets_in_order(self):
        nl = parse_netlist(SAMPLE)
        assert len(nl) == 3
        assert nl.by_name("n0").net_id == 0
        assert nl.by_name("n2").net_id == 2

    def test_fixed_pin_coordinates(self):
        nl = parse_netlist(SAMPLE)
        n0 = nl.by_name("n0")
        assert n0.source.primary == Point(1, 2)
        assert n0.target.primary == Point(9, 2)

    def test_layers(self):
        nl = parse_netlist(SAMPLE)
        assert nl.by_name("n1").target.layer == 1

    def test_multi_candidates(self):
        nl = parse_netlist(SAMPLE)
        n2 = nl.by_name("n2")
        assert len(n2.target.candidates) == 3
        assert n2.is_multi_candidate

    def test_malformed_line(self):
        with pytest.raises(NetlistError, match="line 1"):
            parse_netlist("garbage without arrow")

    def test_bad_layer_tag(self):
        with pytest.raises(NetlistError):
            parse_netlist("n0 X0 1,2 -> L0 3,4")

    def test_bad_coordinate(self):
        with pytest.raises(NetlistError):
            parse_netlist("n0 L0 1.5,2 -> L0 3,4")


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        nl = parse_netlist(SAMPLE)
        path = tmp_path / "nets.txt"
        write_netlist(nl, path)
        back = read_netlist(path)
        assert len(back) == len(nl)
        for net in nl:
            twin = back.by_name(net.name)
            assert twin.source == net.source
            assert twin.target == net.target

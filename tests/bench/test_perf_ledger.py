"""Perf-bench ledger integration: recording, gating, provenance, rationale."""

from repro.bench.perf import _decision_lines, record_to_ledger, run_perf
from repro.obs.ledger import Ledger


def _payload(wall_s=0.5, expansions=1000, phases=None, decision=None):
    wl = {
        "circuit": "Test1",
        "scale": 0.2,
        "seed": 2014,
        "fast": {
            "route_all_s": wall_s,
            "expansions": expansions,
            "searches": 21,
            "phases_s": phases or {"search": wall_s * 0.6},
        },
    }
    if decision is not None:
        wl["parallel_stats"] = {"decision_trace": decision}
    return {
        "schema": "repro-bench-perf/1",
        "config": {"rounds": 1, "seed": 2014, "workers": 1},
        "workloads": [wl],
    }


class TestRecordToLedger:
    def test_appends_one_record_per_workload(self, tmp_path):
        problems = record_to_ledger(_payload(), ledger_dir=tmp_path / "runs")
        assert problems == []
        with Ledger(tmp_path / "runs") as led:
            record = led.history()[0]
        assert record.command == "bench-perf"
        assert record.workload == "Test1@0.2"
        assert record.counters["astar_nodes_expanded_total"] == 1000.0
        assert record.phases["search"] > 0

    def test_gate_passes_on_equal_runs(self, tmp_path):
        root = tmp_path / "runs"
        assert record_to_ledger(_payload(), ledger_dir=root) == []
        assert record_to_ledger(_payload(), ledger_dir=root, gate=True) == []

    def test_gate_flags_counter_regression(self, tmp_path):
        root = tmp_path / "runs"
        assert record_to_ledger(_payload(expansions=1000), ledger_dir=root) == []
        problems = record_to_ledger(
            _payload(expansions=2000), ledger_dir=root, gate=True
        )
        assert problems
        assert "regression" in problems[0]
        assert "astar_nodes_expanded_total" in problems[0]

    def test_gate_without_baseline_is_quiet(self, tmp_path):
        problems = record_to_ledger(
            _payload(), ledger_dir=tmp_path / "runs", gate=True
        )
        assert problems == []

    def test_gate_ignores_records_with_other_config(self, tmp_path):
        root = tmp_path / "runs"
        base = _payload(expansions=1000)
        base["config"]["rounds"] = 9  # different config hash
        assert record_to_ledger(base, ledger_dir=root) == []
        problems = record_to_ledger(
            _payload(expansions=2000), ledger_dir=root, gate=True
        )
        assert problems == []  # not comparable, so nothing to gate against

    def test_decision_trace_recorded(self, tmp_path):
        decision = {"decision": "serial", "reason": "predicted fraction low"}
        record_to_ledger(
            _payload(decision=decision), ledger_dir=tmp_path / "runs"
        )
        with Ledger(tmp_path / "runs") as led:
            record = led.history()[0]
        assert record.parallel_decision == decision


class TestDecisionLines:
    def test_renders_rationale(self):
        decision = {
            "decision": "serial",
            "reason": "predicted batched fraction 0.100 < threshold 0.5",
            "candidates_scanned": 42,
            "halo_rejects": 17,
            "multi_net_batches": 0,
        }
        lines = _decision_lines(_payload(decision=decision))
        assert len(lines) == 1
        assert "parallel decision = serial" in lines[0]
        assert "halo rejects 17" in lines[0]

    def test_no_lines_without_trace(self):
        assert _decision_lines(_payload()) == []


class TestRunPerfPayload:
    def test_payload_carries_provenance(self):
        payload = run_perf(
            workloads=("Test1",),
            scales={"Test1": 0.08},
            rounds=1,
            include_reference=False,
            include_guidance=False,
            include_phases=False,
            verbose=False,
        )
        prov = payload["provenance"]
        assert "repro" in prov
        assert "python" in prov
        assert "numpy" in prov

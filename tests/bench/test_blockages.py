"""Tests for macro blockage generation (obstacle-aware extension)."""

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, generate_benchmark
from repro.errors import ReproError
from repro.grid import CellState
from repro.router import SadpRouter


class TestBlockages:
    def test_density_roughly_respected(self):
        grid, _ = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.2, blockage_density=0.1
        )
        total = grid.width * grid.height
        blocked = grid.blocked_cells(0)
        assert 0.05 * total <= blocked <= 0.2 * total

    def test_blocked_on_every_layer(self):
        grid, _ = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.2, blockage_density=0.1
        )
        assert grid.blocked_cells(0) == grid.blocked_cells(1) == grid.blocked_cells(2)

    def test_pins_avoid_blockages(self):
        grid, nets = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.2, blockage_density=0.15
        )
        for net in nets:
            for pin in (net.source, net.target):
                for p in pin.candidates:
                    assert grid.owner(pin.layer, p) != CellState.BLOCKED

    def test_routing_stays_conflict_free(self):
        grid, nets = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.18, blockage_density=0.12
        )
        result = SadpRouter(grid, nets).route_all()
        assert result.cut_conflicts == 0
        assert result.routability > 0.7

    def test_zero_density_means_no_blockages(self):
        grid, _ = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.15)
        assert grid.blocked_cells(0) == 0

    def test_invalid_density_rejected(self):
        with pytest.raises(ReproError):
            generate_benchmark(
                FIXED_PIN_BENCHMARKS[0], scale=0.15, blockage_density=0.6
            )
        with pytest.raises(ReproError):
            generate_benchmark(
                FIXED_PIN_BENCHMARKS[0], scale=0.15, blockage_density=-0.1
            )

    def test_deterministic_with_blockages(self):
        a_grid, a_nets = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.15, blockage_density=0.1, seed=4
        )
        b_grid, b_nets = generate_benchmark(
            FIXED_PIN_BENCHMARKS[0], scale=0.15, blockage_density=0.1, seed=4
        )
        assert a_grid.blocked_cells(0) == b_grid.blocked_cells(0)
        for na, nb in zip(a_nets, b_nets):
            assert na.source == nb.source

"""Load harness: deterministic workload mix, report math, end-to-end run."""

import json

from repro.bench.load import (
    LoadReport,
    _build_submissions,
    _percentile,
    report_to_json,
    run_load,
)


class TestWorkloadMix:
    def test_duplicate_fraction_is_exact_for_halves(self):
        subs = _build_submissions(8, 0.5, "Test1", 0.1, 2014)
        mixes = [s["_mix"] for s in subs]
        assert mixes.count("duplicate") == 4
        assert mixes.count("fresh") == 4

    def test_duplicates_share_one_submission(self):
        subs = _build_submissions(10, 0.3, "Test1", 0.1, 7)
        dupes = [s for s in subs if s["_mix"] == "duplicate"]
        fresh = [s for s in subs if s["_mix"] == "fresh"]
        assert len({(d["circuit"], d["scale"], d["seed"]) for d in dupes}) == 1
        assert len({f["seed"] for f in fresh}) == len(fresh)
        assert all(f["seed"] != dupes[0]["seed"] for f in fresh)

    def test_deterministic(self):
        assert _build_submissions(16, 0.4, "Test2", 0.2, 1) == _build_submissions(
            16, 0.4, "Test2", 0.2, 1
        )

    def test_all_fresh_and_all_duplicate_extremes(self):
        assert all(
            s["_mix"] == "fresh" for s in _build_submissions(5, 0.0, "T", 0.1, 1)
        )
        assert all(
            s["_mix"] == "duplicate"
            for s in _build_submissions(5, 1.0, "T", 0.1, 1)
        )


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single(self):
        assert _percentile([3.0], 0.99) == 3.0

    def test_endpoints(self):
        vals = [float(i) for i in range(1, 11)]
        assert _percentile(vals, 0.0) == 1.0
        assert _percentile(vals, 1.0) == 10.0
        assert _percentile(vals, 0.5) in (5.0, 6.0)


class TestReport:
    def test_json_schema_roundtrip(self):
        report = LoadReport(params={"jobs": 2})
        report.jobs = 2
        report.ok = 2
        report.latency_s = {"p50": 0.5, "max": 1.0}
        obj = json.loads(report_to_json(report))
        assert obj["schema"] == "repro-bench-load/1"
        assert obj["ok"] == 2
        assert obj["latency_s"]["p50"] == 0.5

    def test_text_mentions_cache_ratio(self):
        report = LoadReport(params={})
        report.cache_hit_ratio = 0.5
        assert "cache-hit ratio 50%" in report.to_text()


class TestEndToEnd:
    def test_small_mixed_run(self, tmp_path):
        report = run_load(
            clients=2,
            jobs=3,
            duplicate_fraction=0.67,
            circuit="Test1",
            scale=0.1,
            timeout_s=300.0,
            service_workers=0,  # inline worker: fast and fork-free
            cache_dir=str(tmp_path / "cache"),
        )
        assert report.jobs == 3
        assert report.ok == 3
        assert report.failed == 0
        assert report.duplicate_jobs + report.fresh_jobs == 3
        assert report.throughput_jobs_per_s > 0
        assert set(report.latency_s) == {"mean", "p50", "p90", "p95", "p99", "max"}
        assert 0.0 <= report.cache_hit_ratio <= 1.0
        # duplicates beyond the first must not re-route
        assert report.route_stage_runs <= report.fresh_jobs + 1


class TestCLI:
    def test_bench_load_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "load",
                "--clients",
                "1",
                "--jobs",
                "2",
                "--duplicates",
                "1.0",
                "--scale",
                "0.1",
                "--service-workers",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(out),
            ]
        )
        assert code == 0
        obj = json.loads(out.read_text())
        assert obj["schema"] == "repro-bench-load/1"
        assert obj["jobs"] == 2
        assert "cache_hit_ratio" in obj
        assert "jobs/s" in capsys.readouterr().out

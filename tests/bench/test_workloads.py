"""Unit tests for the benchmark generator (Test1-Test10)."""

import pytest

from repro.bench import (
    FIXED_PIN_BENCHMARKS,
    MULTI_PIN_BENCHMARKS,
    generate_benchmark,
)
from repro.bench.workloads import spec_by_name
from repro.errors import ReproError


class TestSpecs:
    def test_ten_benchmarks(self):
        assert len(FIXED_PIN_BENCHMARKS) == 5
        assert len(MULTI_PIN_BENCHMARKS) == 5

    def test_paper_parameters(self):
        t1 = spec_by_name("Test1")
        assert t1.num_nets == 1500
        assert t1.die_um == 6.8
        assert not t1.multi_candidate
        t10 = spec_by_name("Test10")
        assert t10.num_nets == 28000
        assert t10.multi_candidate

    def test_tracks_at_40nm_pitch(self):
        assert spec_by_name("Test1").tracks == 170
        assert spec_by_name("Test5").tracks == 900

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            spec_by_name("Test99")


class TestGeneration:
    def test_scaled_instance_sizes(self):
        grid, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.2)
        assert grid.width == 34
        assert len(nets) == 60
        assert grid.num_layers == 3

    def test_full_scale_counts(self):
        grid, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=1.0)
        assert grid.width == 170
        assert len(nets) == 1500

    def test_deterministic(self):
        _, a = generate_benchmark(FIXED_PIN_BENCHMARKS[1], scale=0.15, seed=5)
        _, b = generate_benchmark(FIXED_PIN_BENCHMARKS[1], scale=0.15, seed=5)
        for na, nb in zip(a, b):
            assert na.source == nb.source
            assert na.target == nb.target

    def test_seeds_differ(self):
        _, a = generate_benchmark(FIXED_PIN_BENCHMARKS[1], scale=0.15, seed=5)
        _, b = generate_benchmark(FIXED_PIN_BENCHMARKS[1], scale=0.15, seed=6)
        assert any(
            na.source != nb.source or na.target != nb.target
            for na, nb in zip(a, b)
        )

    def test_multi_candidate_pins(self):
        _, nets = generate_benchmark(MULTI_PIN_BENCHMARKS[0], scale=0.15)
        assert nets.multi_candidate_count() > 0

    def test_fixed_pins_are_fixed(self):
        _, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.15)
        assert nets.multi_candidate_count() == 0

    def test_pins_unique(self):
        _, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.2)
        seen = set()
        for net in nets:
            for pin in (net.source, net.target):
                for p in pin.candidates:
                    assert p not in seen
                    seen.add(p)

    def test_bad_scale_rejected(self):
        with pytest.raises(ReproError):
            generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.0)
        with pytest.raises(ReproError):
            generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=1.5)

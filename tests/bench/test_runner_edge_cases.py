"""Edge cases of the bench runner and comparison helpers."""

import pytest

from repro.bench.runner import BenchRow, _safe_mean, comparison_summary, rows_to_table


class TestComparisonSummary:
    def test_empty(self):
        assert comparison_summary([], []) == "no data"

    def test_zero_overlay_in_ours_skipped(self):
        ours = [BenchRow("t", "ours", 10, 100.0, 0.0, 0.0, 0, 1.0)]
        theirs = [BenchRow("t", "b", 10, 100.0, 500.0, 25.0, 1, 1.0)]
        text = comparison_summary(ours, theirs)
        assert "nan" in text  # no valid overlay ratio

    def test_zero_cpu_skipped(self):
        ours = [BenchRow("t", "ours", 10, 100.0, 10.0, 0.5, 0, 0.0)]
        theirs = [BenchRow("t", "b", 10, 100.0, 20.0, 1.0, 0, 1.0)]
        text = comparison_summary(ours, theirs)
        assert "overlay 2.00x" in text

    def test_safe_mean(self):
        assert _safe_mean([1.0, 3.0]) == 2.0
        import math

        assert math.isnan(_safe_mean([]))


class TestTableFormat:
    def test_empty_rows_table(self):
        table = rows_to_table([])
        assert "Circuit" in table

    def test_row_alignment(self):
        rows = [BenchRow("Test1", "ours", 1500, 94.0, 193.0, 9.65, 0, 8.5)]
        table = rows_to_table(rows)
        line = table.splitlines()[-1]
        assert line.startswith("Test1")
        assert "1500" in line and "94.0" in line


class TestBenchRowFromResult:
    def test_from_result(self):
        from repro.router.result import NetRoute, RoutingResult
        from repro.geometry import Point, Segment

        result = RoutingResult()
        result.routes[0] = NetRoute(
            net_id=0,
            success=True,
            segments=[Segment(0, Point(0, 0), Point(5, 0))],
        )
        result.overlay_nm = 40.0
        result.overlay_units = 2.0
        result.cut_conflicts = 0
        result.cpu_seconds = 0.5
        row = BenchRow.from_result("TestX", "ours", result)
        assert row.num_nets == 1
        assert row.routability_pct == 100.0
        assert row.wirelength == 5

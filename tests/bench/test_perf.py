"""The perf bench: payload shape, regression gate, JSON row export."""

import json

import pytest

from repro import obs
from repro.bench.perf import (
    check_against_baseline,
    check_parallel_equivalence,
    run_perf,
)
from repro.bench.runner import BenchRow, append_rows_json, rows_to_json


def _row(circuit="Test1", cpu=1.0):
    return BenchRow(
        circuit=circuit,
        router="ours",
        num_nets=10,
        routability_pct=100.0,
        overlay_nm=40.0,
        overlay_units=1.0,
        conflicts=0,
        cpu_s=cpu,
    )


class TestPerfRun:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_phases=False,
            verbose=False,
        )

    def test_payload_shape(self, payload):
        assert payload["schema"] == "repro-bench-perf/1"
        (wl,) = payload["workloads"]
        assert wl["circuit"] == "Test1"
        for mode in ("fast", "reference"):
            assert wl[mode]["route_all_s"] > 0
            assert wl[mode]["expansions"] > 0
            assert wl[mode]["expansions_per_s"] > 0
        assert "speedup" in wl and wl["speedup"] > 0
        assert "walltime_reduction_pct" in wl
        assert "summary" in payload

    def test_modes_agree_on_quality(self, payload):
        (wl,) = payload["workloads"]
        # Equivalent implementations: identical routing quality.
        assert wl["fast"]["routability_pct"] == wl["reference"]["routability_pct"]
        assert wl["fast"]["overlay_units"] == wl["reference"]["overlay_units"]
        assert wl["fast"]["expansions"] == wl["reference"]["expansions"]

    def test_self_check_passes(self, payload):
        assert check_against_baseline(payload, payload, tolerance=0.30) == []

    def test_refuses_to_run_instrumented(self):
        with obs.session():
            with pytest.raises(RuntimeError):
                run_perf(workloads=["Test1"], rounds=1, verbose=False)


class TestPhaseSplit:
    def test_phase_split_is_exhaustive(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_phases=True,
            verbose=False,
        )
        (wl,) = payload["workloads"]
        phases = wl["phases_s"]
        # The commit bucket closes the old accounting gap: every phase is
        # a disjoint slice of the instrumented run, so the split never
        # sums past the run's route_all wall time.
        assert set(phases) == {"search", "graph", "flip", "commit"}
        assert wl["phases_route_all_s"] > 0
        assert sum(phases.values()) <= wl["phases_route_all_s"]
        assert phases["commit"] > 0


class TestParallelBench:
    def test_parallel_mode_fields_and_equivalence(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_phases=False,
            workers=2,
            executor="thread",
            verbose=False,
        )
        assert payload["config"]["workers"] == 2
        (wl,) = payload["workloads"]
        assert wl["parallel"]["route_all_s"] > 0
        assert "parallel_speedup" in wl
        stats = wl["parallel_stats"]
        assert stats["workers"] == 2
        for key in ("batches", "mean_batch_size", "fallbacks"):
            assert key in stats
        assert check_parallel_equivalence(payload) == []

    def test_equivalence_gate_catches_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {"routability_pct": 100.0, "overlay_units": 4.0},
                    "parallel": {"routability_pct": 98.0, "overlay_units": 5.0},
                }
            ]
        }
        problems = check_parallel_equivalence(payload)
        assert len(problems) == 2


class TestRegressionGate:
    def _payload(self, speedup):
        return {
            "schema": "repro-bench-perf/1",
            "workloads": [{"circuit": "Test1", "speedup": speedup}],
        }

    def test_within_tolerance_passes(self):
        assert (
            check_against_baseline(
                self._payload(1.10), self._payload(1.40), tolerance=0.30
            )
            == []
        )

    def test_regression_fails(self):
        problems = check_against_baseline(
            self._payload(0.90), self._payload(1.40), tolerance=0.30
        )
        assert problems and "Test1" in problems[0]

    def test_disjoint_workloads_flagged(self):
        current = {"workloads": [{"circuit": "Test2", "speedup": 1.5}]}
        problems = check_against_baseline(current, self._payload(1.4))
        assert problems


class TestRowsJson:
    def test_rows_to_json_round_trips(self):
        doc = json.loads(rows_to_json([_row()], caption="t", scale=0.1))
        assert doc["schema"] == "repro-bench-rows/1"
        assert doc["caption"] == "t"
        (row,) = doc["rows"]
        assert row["circuit"] == "Test1"
        assert row["scale"] == 0.1
        assert row["cpu_s"] == 1.0

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "table.json"
        append_rows_json(path, [_row(cpu=1.0)], scale=0.1)
        append_rows_json(path, [_row("Test2", cpu=2.0)], scale=0.2)
        doc = json.loads(path.read_text())
        assert [r["circuit"] for r in doc["rows"]] == ["Test1", "Test2"]
        assert [r["scale"] for r in doc["rows"]] == [0.1, 0.2]

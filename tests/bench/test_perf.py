"""The perf bench: payload shape, regression gate, JSON row export."""

import json

import pytest

from repro import obs
from repro.bench.perf import (
    check_against_baseline,
    check_core_equivalence,
    check_guidance_equivalence,
    check_kernel_equivalence,
    check_parallel_equivalence,
    full_tier_skip_reason,
    render_phase_table,
    run_perf,
)
from repro.router.kernel import kernel_backend_name
from repro.bench.runner import BenchRow, append_rows_json, rows_to_json


def _row(circuit="Test1", cpu=1.0):
    return BenchRow(
        circuit=circuit,
        router="ours",
        num_nets=10,
        routability_pct=100.0,
        overlay_nm=40.0,
        overlay_units=1.0,
        conflicts=0,
        cpu_s=cpu,
    )


class TestPerfRun:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_phases=False,
            verbose=False,
        )

    def test_payload_shape(self, payload):
        assert payload["schema"] == "repro-bench-perf/1"
        (wl,) = payload["workloads"]
        assert wl["circuit"] == "Test1"
        assert wl["name"] == "Test1"  # explicit name on every row
        for mode in ("fast", "reference", "guided"):
            assert wl[mode]["route_all_s"] > 0
            assert wl[mode]["expansions"] > 0
            assert wl[mode]["expansions_per_s"] > 0
            assert wl[mode]["expansions_per_search"] > 0
        assert "speedup" in wl and wl["speedup"] > 0
        assert "walltime_reduction_pct" in wl
        assert "summary" in payload

    def test_modes_agree_on_quality(self, payload):
        (wl,) = payload["workloads"]
        # Equivalent implementations: identical routing quality. The
        # reference sample ran the object core engine and the dict A*;
        # the fast sample ran the SoA core and flat-array A*.
        assert wl["fast"]["routability_pct"] == wl["reference"]["routability_pct"]
        assert wl["fast"]["overlay_units"] == wl["reference"]["overlay_units"]
        assert wl["fast"]["expansions"] == wl["reference"]["expansions"]
        assert check_core_equivalence(payload) == []

    def test_guidance_ab_fields(self, payload):
        (wl,) = payload["workloads"]
        assert "guidance_speedup" in wl
        assert wl["expansion_reduction"] >= 1.0
        # guided counters appear once the auto trigger actually trips;
        # at smoke scale most searches finish under the trigger, so the
        # counters may legitimately be absent (= zero)
        assert wl["guided"].get("guided_searches", 0) >= 0
        # pruning is invisible to the result, cheaper on expansions
        assert wl["guided"]["routability_pct"] == wl["fast"]["routability_pct"]
        assert wl["guided"]["overlay_units"] == wl["fast"]["overlay_units"]
        assert wl["guided"]["searches"] == wl["fast"]["searches"]
        assert wl["guided"]["expansions"] <= wl["fast"]["expansions"]
        summary = payload["summary"]
        assert "geomean_guidance_speedup" in summary
        assert summary["geomean_expansion_reduction"] >= 1.0
        assert check_guidance_equivalence(payload) == []

    def test_self_check_passes(self, payload):
        assert check_against_baseline(payload, payload, tolerance=0.30) == []

    def test_refuses_to_run_instrumented(self):
        with obs.session():
            with pytest.raises(RuntimeError):
                run_perf(workloads=["Test1"], rounds=1, verbose=False)


class TestPhaseSplit:
    def test_each_sample_carries_its_own_split(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=True,
            include_phases=True,
            verbose=False,
        )
        (wl,) = payload["workloads"]
        # phases used to be emitted once per workload (misattributing
        # the fast run's profile to every variant); now each sample
        # carries the split of its own instrumented run.
        assert "phases_s" not in wl
        for variant in ("fast", "reference", "guided"):
            phases = wl[variant]["phases_s"]
            # The commit bucket closes the old accounting gap: every
            # phase is a disjoint slice of the instrumented run, so the
            # split never sums past the run's route_all wall time.
            assert set(phases) == {"search", "graph", "flip", "commit"}
            assert wl[variant]["phases_route_all_s"] > 0
            assert sum(phases.values()) <= wl[variant]["phases_route_all_s"]
            assert phases["commit"] > 0
        table = render_phase_table(payload)
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header + rule + one row per variant
        for variant in ("fast", "reference", "guided"):
            assert any(variant in line for line in lines[2:])

    def test_render_phase_table_skips_unsplit_samples(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {"route_all_s": 1.0},  # no phases_s
                }
            ]
        }
        assert len(render_phase_table(payload).splitlines()) == 2


class TestKernelBench:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_kernel=True,
            include_phases=False,
            verbose=False,
        )

    def test_kernel_row_fields(self, payload):
        (wl,) = payload["workloads"]
        kern = wl["kernel"]
        assert kern["route_all_s"] > 0
        assert kern["kernel_backend"] == kernel_backend_name()
        assert "kernel_speedup" in wl
        summary = payload["summary"]
        assert summary["kernel_backend"] == kernel_backend_name()
        if kernel_backend_name() == "interpreted":
            # The fallback's ratio times CPython against CPython —
            # recorded as an explicit null so trend lines on numba-free
            # hosts are not polluted by a meaningless series.
            assert wl["kernel_speedup"] is None
            assert "geomean_kernel_speedup" not in summary
        else:
            assert wl["kernel_speedup"] > 0
            assert "geomean_kernel_speedup" in summary

    def test_kernel_matches_guided_bit_for_bit(self, payload):
        (wl,) = payload["workloads"]
        kern, guided = wl["kernel"], wl["guided"]
        for metric in ("routability_pct", "overlay_units", "searches", "expansions"):
            assert kern[metric] == guided[metric]
        assert check_kernel_equivalence(payload) == []

    def test_gate_catches_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {},
                    "guided": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1000,
                    },
                    "kernel": {
                        "routability_pct": 100.0,
                        "overlay_units": 5.0,
                        "searches": 50,
                        "expansions": 1100,
                    },
                }
            ]
        }
        problems = check_kernel_equivalence(payload)
        assert len(problems) == 2  # overlay + expansions diverged

    def test_gate_passes_without_kernel_sample(self):
        payload = {"workloads": [{"circuit": "Test1", "fast": {}}]}
        assert check_kernel_equivalence(payload) == []

    def test_gate_falls_back_to_fast_sample(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                    },
                    "kernel": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        # expansions may differ from *unguided* fast —
                        # the kernel runs guided; not compared here
                        "expansions": 900,
                    },
                }
            ]
        }
        assert check_kernel_equivalence(payload) == []


class TestParallelBench:
    def test_parallel_mode_fields_and_equivalence(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_phases=False,
            workers=2,
            executor="thread",
            verbose=False,
        )
        assert payload["config"]["workers"] == 2
        (wl,) = payload["workloads"]
        assert wl["parallel"]["route_all_s"] > 0
        assert "parallel_speedup" in wl
        stats = wl["parallel_stats"]
        assert stats["workers"] == 2
        for key in ("batches", "mean_batch_size", "fallbacks"):
            assert key in stats
        assert check_parallel_equivalence(payload) == []

    def test_workers_auto_records_decision(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_guidance=False,
            include_phases=False,
            workers="auto",
            executor="thread",
            verbose=False,
        )
        assert payload["config"]["workers"] == "auto"
        (wl,) = payload["workloads"]
        stats = wl["parallel_stats"]
        assert stats["auto_decision"] in ("serial", "parallel")
        assert 0.0 <= stats["predicted_batched_fraction"] <= 1.0
        assert check_parallel_equivalence(payload) == []

    def test_equivalence_gate_catches_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {"routability_pct": 100.0, "overlay_units": 4.0},
                    "parallel": {"routability_pct": 98.0, "overlay_units": 5.0},
                }
            ]
        }
        problems = check_parallel_equivalence(payload)
        assert len(problems) == 2


class TestGuidanceGate:
    def test_gate_catches_metric_and_expansion_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1000,
                    },
                    "guided": {
                        "routability_pct": 99.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1200,
                    },
                }
            ]
        }
        problems = check_guidance_equivalence(payload)
        assert len(problems) == 2  # routability mismatch + more expansions

    def test_gate_passes_without_guided_sample(self):
        payload = {"workloads": [{"circuit": "Test1", "fast": {}}]}
        assert check_guidance_equivalence(payload) == []


class TestCoreEquivalenceGate:
    def _payload(self, ref_overlay=3.0, ref_searches=12):
        return {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {
                        "routability_pct": 100.0,
                        "overlay_units": 3.0,
                        "searches": 12,
                    },
                    "reference": {
                        "routability_pct": 100.0,
                        "overlay_units": ref_overlay,
                        "searches": ref_searches,
                    },
                }
            ]
        }

    def test_identical_metrics_pass(self):
        assert check_core_equivalence(self._payload()) == []

    def test_overlay_drift_fails(self):
        problems = check_core_equivalence(self._payload(ref_overlay=4.0))
        assert problems and "overlay_units" in problems[0]

    def test_search_count_drift_fails(self):
        problems = check_core_equivalence(self._payload(ref_searches=13))
        assert problems and "searches" in problems[0]

    def test_passes_without_reference_sample(self):
        payload = {"workloads": [{"circuit": "Test1", "fast": {}}]}
        assert check_core_equivalence(payload) == []


class TestFullTierSkip:
    def _payload(self, reasons):
        return {
            "tiers": {
                "full": {
                    "workloads": [
                        {
                            "circuit": f"Test{i}",
                            "parallel_stats": {
                                "decision_trace": {"reason": r}
                            },
                        }
                        for i, r in enumerate(reasons)
                    ]
                }
            }
        }

    def test_single_core_host_skips(self):
        payload = self._payload(["single-core host", "single-core host"])
        assert full_tier_skip_reason(payload) == "single-core host"

    def test_any_other_reason_runs_the_gate(self):
        payload = self._payload(["single-core host", "netlist too small"])
        assert full_tier_skip_reason(payload) is None

    def test_probe_reason_counts(self):
        payload = {
            "tiers": {
                "full": {
                    "workloads": [
                        {
                            "circuit": "Test5",
                            "auto_decision_probe": {
                                "reason": "single-core host"
                            },
                        }
                    ]
                }
            }
        }
        assert full_tier_skip_reason(payload) == "single-core host"

    def test_no_full_tier_means_no_skip(self):
        assert full_tier_skip_reason({"workloads": []}) is None


class TestRegressionGate:
    def _payload(self, speedup, phases=None):
        wl = {"circuit": "Test1", "speedup": speedup}
        if phases is not None:
            wl["phase_speedups"] = phases
        return {
            "schema": "repro-bench-perf/1",
            "workloads": [wl],
        }

    def test_within_tolerance_passes(self):
        assert (
            check_against_baseline(
                self._payload(1.10), self._payload(1.40), tolerance=0.30
            )
            == []
        )

    def test_regression_fails(self):
        problems = check_against_baseline(
            self._payload(0.90), self._payload(1.40), tolerance=0.30
        )
        assert problems and "Test1" in problems[0]

    def test_disjoint_workloads_flagged(self):
        current = {"workloads": [{"circuit": "Test2", "speedup": 1.5}]}
        problems = check_against_baseline(current, self._payload(1.4))
        assert problems

    def test_phase_ratio_regression_fails(self):
        """A per-phase core ratio collapse fails the gate even when the
        end-to-end speedup still passes."""
        current = self._payload(1.40, phases={"graph": 0.7, "flip": 1.3})
        baseline = self._payload(1.40, phases={"graph": 1.5, "flip": 1.3})
        problems = check_against_baseline(current, baseline, tolerance=0.30)
        assert len(problems) == 1
        assert "graph-phase" in problems[0]

    def test_phase_within_tolerance_passes(self):
        current = self._payload(1.40, phases={"commit": 1.1})
        baseline = self._payload(1.40, phases={"commit": 1.3})
        assert check_against_baseline(current, baseline, 0.30) == []

    def test_phases_missing_on_either_side_are_skipped(self):
        current = self._payload(1.40, phases={"graph": 0.5})
        baseline = self._payload(1.40)  # no phases recorded
        assert check_against_baseline(current, baseline, 0.30) == []
        assert check_against_baseline(baseline, current, 0.30) == []


class TestRowsJson:
    def test_rows_to_json_round_trips(self):
        doc = json.loads(rows_to_json([_row()], caption="t", scale=0.1))
        assert doc["schema"] == "repro-bench-rows/1"
        assert doc["caption"] == "t"
        (row,) = doc["rows"]
        assert row["circuit"] == "Test1"
        assert row["scale"] == 0.1
        assert row["cpu_s"] == 1.0

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "table.json"
        append_rows_json(path, [_row(cpu=1.0)], scale=0.1)
        append_rows_json(path, [_row("Test2", cpu=2.0)], scale=0.2)
        doc = json.loads(path.read_text())
        assert [r["circuit"] for r in doc["rows"]] == ["Test1", "Test2"]
        assert [r["scale"] for r in doc["rows"]] == [0.1, 0.2]

"""The perf bench: payload shape, regression gate, JSON row export."""

import json

import pytest

from repro import obs
from repro.bench.perf import (
    check_against_baseline,
    check_guidance_equivalence,
    check_kernel_equivalence,
    check_parallel_equivalence,
    render_phase_table,
    run_perf,
)
from repro.router.kernel import kernel_backend_name
from repro.bench.runner import BenchRow, append_rows_json, rows_to_json


def _row(circuit="Test1", cpu=1.0):
    return BenchRow(
        circuit=circuit,
        router="ours",
        num_nets=10,
        routability_pct=100.0,
        overlay_nm=40.0,
        overlay_units=1.0,
        conflicts=0,
        cpu_s=cpu,
    )


class TestPerfRun:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_phases=False,
            verbose=False,
        )

    def test_payload_shape(self, payload):
        assert payload["schema"] == "repro-bench-perf/1"
        (wl,) = payload["workloads"]
        assert wl["circuit"] == "Test1"
        assert wl["name"] == "Test1"  # explicit name on every row
        for mode in ("fast", "reference", "guided"):
            assert wl[mode]["route_all_s"] > 0
            assert wl[mode]["expansions"] > 0
            assert wl[mode]["expansions_per_s"] > 0
            assert wl[mode]["expansions_per_search"] > 0
        assert "speedup" in wl and wl["speedup"] > 0
        assert "walltime_reduction_pct" in wl
        assert "summary" in payload

    def test_modes_agree_on_quality(self, payload):
        (wl,) = payload["workloads"]
        # Equivalent implementations: identical routing quality.
        assert wl["fast"]["routability_pct"] == wl["reference"]["routability_pct"]
        assert wl["fast"]["overlay_units"] == wl["reference"]["overlay_units"]
        assert wl["fast"]["expansions"] == wl["reference"]["expansions"]

    def test_guidance_ab_fields(self, payload):
        (wl,) = payload["workloads"]
        assert "guidance_speedup" in wl
        assert wl["expansion_reduction"] >= 1.0
        # guided counters appear once the auto trigger actually trips;
        # at smoke scale most searches finish under the trigger, so the
        # counters may legitimately be absent (= zero)
        assert wl["guided"].get("guided_searches", 0) >= 0
        # pruning is invisible to the result, cheaper on expansions
        assert wl["guided"]["routability_pct"] == wl["fast"]["routability_pct"]
        assert wl["guided"]["overlay_units"] == wl["fast"]["overlay_units"]
        assert wl["guided"]["searches"] == wl["fast"]["searches"]
        assert wl["guided"]["expansions"] <= wl["fast"]["expansions"]
        summary = payload["summary"]
        assert "geomean_guidance_speedup" in summary
        assert summary["geomean_expansion_reduction"] >= 1.0
        assert check_guidance_equivalence(payload) == []

    def test_self_check_passes(self, payload):
        assert check_against_baseline(payload, payload, tolerance=0.30) == []

    def test_refuses_to_run_instrumented(self):
        with obs.session():
            with pytest.raises(RuntimeError):
                run_perf(workloads=["Test1"], rounds=1, verbose=False)


class TestPhaseSplit:
    def test_each_sample_carries_its_own_split(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=True,
            include_phases=True,
            verbose=False,
        )
        (wl,) = payload["workloads"]
        # phases used to be emitted once per workload (misattributing
        # the fast run's profile to every variant); now each sample
        # carries the split of its own instrumented run.
        assert "phases_s" not in wl
        for variant in ("fast", "reference", "guided"):
            phases = wl[variant]["phases_s"]
            # The commit bucket closes the old accounting gap: every
            # phase is a disjoint slice of the instrumented run, so the
            # split never sums past the run's route_all wall time.
            assert set(phases) == {"search", "graph", "flip", "commit"}
            assert wl[variant]["phases_route_all_s"] > 0
            assert sum(phases.values()) <= wl[variant]["phases_route_all_s"]
            assert phases["commit"] > 0
        table = render_phase_table(payload)
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header + rule + one row per variant
        for variant in ("fast", "reference", "guided"):
            assert any(variant in line for line in lines[2:])

    def test_render_phase_table_skips_unsplit_samples(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {"route_all_s": 1.0},  # no phases_s
                }
            ]
        }
        assert len(render_phase_table(payload).splitlines()) == 2


class TestKernelBench:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_kernel=True,
            include_phases=False,
            verbose=False,
        )

    def test_kernel_row_fields(self, payload):
        (wl,) = payload["workloads"]
        kern = wl["kernel"]
        assert kern["route_all_s"] > 0
        assert kern["kernel_backend"] == kernel_backend_name()
        assert "kernel_speedup" in wl
        summary = payload["summary"]
        assert "geomean_kernel_speedup" in summary
        assert summary["kernel_backend"] == kernel_backend_name()

    def test_kernel_matches_guided_bit_for_bit(self, payload):
        (wl,) = payload["workloads"]
        kern, guided = wl["kernel"], wl["guided"]
        for metric in ("routability_pct", "overlay_units", "searches", "expansions"):
            assert kern[metric] == guided[metric]
        assert check_kernel_equivalence(payload) == []

    def test_gate_catches_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {},
                    "guided": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1000,
                    },
                    "kernel": {
                        "routability_pct": 100.0,
                        "overlay_units": 5.0,
                        "searches": 50,
                        "expansions": 1100,
                    },
                }
            ]
        }
        problems = check_kernel_equivalence(payload)
        assert len(problems) == 2  # overlay + expansions diverged

    def test_gate_passes_without_kernel_sample(self):
        payload = {"workloads": [{"circuit": "Test1", "fast": {}}]}
        assert check_kernel_equivalence(payload) == []

    def test_gate_falls_back_to_fast_sample(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                    },
                    "kernel": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        # expansions may differ from *unguided* fast —
                        # the kernel runs guided; not compared here
                        "expansions": 900,
                    },
                }
            ]
        }
        assert check_kernel_equivalence(payload) == []


class TestParallelBench:
    def test_parallel_mode_fields_and_equivalence(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_phases=False,
            workers=2,
            executor="thread",
            verbose=False,
        )
        assert payload["config"]["workers"] == 2
        (wl,) = payload["workloads"]
        assert wl["parallel"]["route_all_s"] > 0
        assert "parallel_speedup" in wl
        stats = wl["parallel_stats"]
        assert stats["workers"] == 2
        for key in ("batches", "mean_batch_size", "fallbacks"):
            assert key in stats
        assert check_parallel_equivalence(payload) == []

    def test_workers_auto_records_decision(self):
        payload = run_perf(
            workloads=["Test1"],
            scales={"Test1": 0.06},
            rounds=1,
            include_reference=False,
            include_guidance=False,
            include_phases=False,
            workers="auto",
            executor="thread",
            verbose=False,
        )
        assert payload["config"]["workers"] == "auto"
        (wl,) = payload["workloads"]
        stats = wl["parallel_stats"]
        assert stats["auto_decision"] in ("serial", "parallel")
        assert 0.0 <= stats["predicted_batched_fraction"] <= 1.0
        assert check_parallel_equivalence(payload) == []

    def test_equivalence_gate_catches_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {"routability_pct": 100.0, "overlay_units": 4.0},
                    "parallel": {"routability_pct": 98.0, "overlay_units": 5.0},
                }
            ]
        }
        problems = check_parallel_equivalence(payload)
        assert len(problems) == 2


class TestGuidanceGate:
    def test_gate_catches_metric_and_expansion_mismatch(self):
        payload = {
            "workloads": [
                {
                    "circuit": "Test1",
                    "fast": {
                        "routability_pct": 100.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1000,
                    },
                    "guided": {
                        "routability_pct": 99.0,
                        "overlay_units": 4.0,
                        "searches": 50,
                        "expansions": 1200,
                    },
                }
            ]
        }
        problems = check_guidance_equivalence(payload)
        assert len(problems) == 2  # routability mismatch + more expansions

    def test_gate_passes_without_guided_sample(self):
        payload = {"workloads": [{"circuit": "Test1", "fast": {}}]}
        assert check_guidance_equivalence(payload) == []


class TestRegressionGate:
    def _payload(self, speedup):
        return {
            "schema": "repro-bench-perf/1",
            "workloads": [{"circuit": "Test1", "speedup": speedup}],
        }

    def test_within_tolerance_passes(self):
        assert (
            check_against_baseline(
                self._payload(1.10), self._payload(1.40), tolerance=0.30
            )
            == []
        )

    def test_regression_fails(self):
        problems = check_against_baseline(
            self._payload(0.90), self._payload(1.40), tolerance=0.30
        )
        assert problems and "Test1" in problems[0]

    def test_disjoint_workloads_flagged(self):
        current = {"workloads": [{"circuit": "Test2", "speedup": 1.5}]}
        problems = check_against_baseline(current, self._payload(1.4))
        assert problems


class TestRowsJson:
    def test_rows_to_json_round_trips(self):
        doc = json.loads(rows_to_json([_row()], caption="t", scale=0.1))
        assert doc["schema"] == "repro-bench-rows/1"
        assert doc["caption"] == "t"
        (row,) = doc["rows"]
        assert row["circuit"] == "Test1"
        assert row["scale"] == 0.1
        assert row["cpu_s"] == 1.0

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "table.json"
        append_rows_json(path, [_row(cpu=1.0)], scale=0.1)
        append_rows_json(path, [_row("Test2", cpu=2.0)], scale=0.2)
        doc = json.loads(path.read_text())
        assert [r["circuit"] for r in doc["rows"]] == ["Test1", "Test2"]
        assert [r["scale"] for r in doc["rows"]] == [0.1, 0.2]

"""Unit tests for the bench runner and the power-law fit (Fig. 20)."""

import pytest

from repro.baselines import GaoPanTrimRouter
from repro.bench import (
    FIXED_PIN_BENCHMARKS,
    BenchRow,
    fit_power_law,
    run_baseline,
    run_proposed,
    rows_to_table,
)
from repro.bench.runner import comparison_summary
from repro.errors import ReproError


class TestRunner:
    def test_run_proposed_row(self):
        row = run_proposed(FIXED_PIN_BENCHMARKS[0], scale=0.12)
        assert row.router == "ours"
        assert row.circuit == "Test1"
        assert row.conflicts == 0
        assert 0 < row.routability_pct <= 100

    def test_run_baseline_same_instance(self):
        row = run_baseline(GaoPanTrimRouter, "gao-pan", FIXED_PIN_BENCHMARKS[0], scale=0.12)
        ours = run_proposed(FIXED_PIN_BENCHMARKS[0], scale=0.12)
        assert row.num_nets == ours.num_nets

    def test_table_formatting(self):
        rows = [
            BenchRow("Test1", "ours", 100, 97.5, 200.0, 10.0, 0, 1.23),
            BenchRow("Test1", "gao-pan", 100, 80.0, 2000.0, 100.0, 12, 0.5),
        ]
        table = rows_to_table(rows, caption="Table III")
        assert "Table III" in table
        assert "ours" in table and "gao-pan" in table
        assert "97.5" in table

    def test_comparison_summary(self):
        ours = [BenchRow("t", "ours", 10, 95.0, 100.0, 5.0, 0, 1.0)]
        theirs = [BenchRow("t", "b", 10, 80.0, 1000.0, 50.0, 9, 2.0)]
        text = comparison_summary(ours, theirs)
        assert "10.00x" in text  # overlay ratio


class TestPowerLaw:
    def test_exact_square_law(self):
        xs = [10, 20, 40, 80]
        ys = [x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prediction(self):
        fit = fit_power_law([1, 2, 4], [3, 6, 12])
        assert fit.exponent == pytest.approx(1.0)
        assert fit.predict(8) == pytest.approx(24)

    def test_validation(self):
        with pytest.raises(ReproError):
            fit_power_law([1], [1])
        with pytest.raises(ReproError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ReproError):
            fit_power_law([0, 2], [1, 2])

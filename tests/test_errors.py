"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    ColoringError,
    DecompositionError,
    DesignRuleError,
    GeometryError,
    GridError,
    NetlistError,
    ReproError,
    RoutingError,
)

ALL_ERRORS = [
    GeometryError,
    DesignRuleError,
    GridError,
    NetlistError,
    RoutingError,
    ColoringError,
    DecompositionError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_subclasses_are_distinct(self):
        assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)


class TestRaisingSites:
    """Each subsystem raises its own error family (spot checks)."""

    def test_geometry(self):
        from repro.geometry import Rect

        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 0)

    def test_rules(self):
        from repro.rules import DesignRules

        with pytest.raises(DesignRuleError):
            DesignRules(w_line=10, w_spacer=20)

    def test_grid(self):
        from repro.geometry import Point
        from repro.grid import RoutingGrid

        with pytest.raises(GridError):
            RoutingGrid(5, 5).owner(0, Point(9, 9))

    def test_netlist(self):
        from repro.netlist import Pin

        with pytest.raises(NetlistError):
            Pin(candidates=())

    def test_routing(self):
        from repro.router import CostParams

        with pytest.raises(RoutingError):
            CostParams(alpha=-1)

    def test_coloring(self):
        from repro.core import ConstraintEdge, OverlayConstraintGraph, ScenarioType
        from repro.core.color_flip import flip_colors

        g = OverlayConstraintGraph()
        g.add_edges(
            [
                ConstraintEdge.from_scenario(0, 1, ScenarioType.T1A),
                ConstraintEdge.from_scenario(1, 2, ScenarioType.T1A),
                ConstraintEdge.from_scenario(2, 0, ScenarioType.T1A),
            ]
        )
        with pytest.raises(ColoringError):
            flip_colors(g)

    def test_decomposition(self):
        from repro.decompose.masks import default_window
        from repro.rules import DesignRules

        with pytest.raises(DecompositionError):
            default_window([], DesignRules())

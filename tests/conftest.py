"""Shared fixtures for the test suite."""

import pytest

from repro import obs
from repro.rules import DesignRules


@pytest.fixture(autouse=True)
def _obs_off_between_tests():
    """Observability is process-global state; never leak it across tests."""
    yield
    obs.disable()


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    """CLI runs record to the ledger by default; keep test runs out of
    the working tree's ``.repro_runs/``."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "repro_runs"))


@pytest.fixture
def rules() -> DesignRules:
    """The paper's 10 nm-node rule set."""
    return DesignRules()

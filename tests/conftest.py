"""Shared fixtures for the test suite."""

import pytest

from repro.rules import DesignRules


@pytest.fixture
def rules() -> DesignRules:
    """The paper's 10 nm-node rule set."""
    return DesignRules()

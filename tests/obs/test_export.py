"""Tests for the JSONL run-log exporter and its schema validator."""

import json

from repro import obs
from repro.obs.export import (
    SCHEMA_VERSION,
    export_run_jsonl,
    phase_table,
    phase_totals,
    validate_run_jsonl,
)


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestExport:
    def test_meta_line_first(self, tmp_path):
        path = export_run_jsonl(tmp_path / "run.jsonl")
        records = _lines(path)
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["tool"] == "repro"

    def test_exports_spans_and_metrics(self, tmp_path):
        with obs.session() as ob:
            with obs.span("route_all"):
                with obs.span("astar_search", net_id=3):
                    pass
            ob.registry.counter("ripups_total", reason="cut_conflict").inc(2)
            ob.registry.histogram("route_net_seconds").observe(0.5)
            path = export_run_jsonl(tmp_path / "run.jsonl", meta={"circuit": "T1"})
        records = _lines(path)
        assert records[0]["circuit"] == "T1"
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"] == "metric"]
        assert {s["name"] for s in spans} == {"route_all", "astar_search"}
        child = next(s for s in spans if s["name"] == "astar_search")
        parent = next(s for s in spans if s["name"] == "route_all")
        assert child["parent_id"] == parent["span_id"]
        assert child["attrs"] == {"net_id": 3}
        kinds = {m["metric"]: m["kind"] for m in metrics}
        assert kinds == {"ripups_total": "counter", "route_net_seconds": "histogram"}

    def test_exports_router_trace_events(self, tmp_path):
        from repro.router.trace import RouterTrace, TraceEvent

        trace = RouterTrace()
        trace.events.append(TraceEvent("rip_up", 4, {"reason": "cut_conflict"}))
        path = export_run_jsonl(tmp_path / "run.jsonl", router_trace=trace)
        events = [r for r in _lines(path) if r["type"] == "router_event"]
        assert events == [
            {
                "type": "router_event",
                "kind": "rip_up",
                "net_id": 4,
                "details": {"reason": "cut_conflict"},
            }
        ]

    def test_export_without_backend_still_valid(self, tmp_path):
        obs.disable()
        path = export_run_jsonl(tmp_path / "run.jsonl")
        assert validate_run_jsonl(path) == []


class TestValidator:
    def test_valid_full_log(self, tmp_path):
        with obs.session() as ob:
            with obs.span("route_all"):
                pass
            ob.registry.counter("x_total").inc()
            path = export_run_jsonl(tmp_path / "run.jsonl")
        assert validate_run_jsonl(path) == []

    def test_missing_file(self, tmp_path):
        problems = validate_run_jsonl(tmp_path / "absent.jsonl")
        assert problems and "cannot read" in problems[0]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert any("empty" in p for p in validate_run_jsonl(path))

    def test_missing_meta_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n')
        assert any("meta" in p for p in validate_run_jsonl(path))

    def test_bad_json_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema": 1}\nnot json\n')
        assert any("not valid JSON" in p for p in validate_run_jsonl(path))

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema": 99}\n')
        assert any("unsupported schema" in p for p in validate_run_jsonl(path))

    def test_mistyped_span_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta", "schema": 1}\n'
            '{"type": "span", "name": 5, "span_id": "x", "start_s": 0, '
            '"duration_s": 0, "attrs": {}}\n'
        )
        problems = validate_run_jsonl(path)
        assert any("name" in p for p in problems)
        assert any("span_id" in p for p in problems)

    def test_unknown_type_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema": 1}\n{"type": "mystery"}\n')
        assert any("unknown record type" in p for p in validate_run_jsonl(path))


class TestPhaseTable:
    def test_disabled_message(self):
        obs.disable()
        assert "disabled" in phase_table()

    def test_totals_fold_flip_spans(self):
        with obs.session() as ob:
            with obs.span("route_all"):
                with obs.span("pseudo_color"):
                    pass
                with obs.span("color_flip"):
                    pass
                with obs.span("astar_search"):
                    pass
            totals = phase_totals(ob)
            table = phase_table(ob)
        assert set(totals) == {"search", "graph", "flip", "commit", "decompose"}
        assert totals["flip"] >= 0.0
        assert "search" in table and "flip" in table and "total" in table

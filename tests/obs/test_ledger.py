"""Run ledger: append-only records, the SQLite index, and run diffing."""

import json

import pytest

from repro.obs.ledger import (
    DiffThresholds,
    Ledger,
    RunRecord,
    default_ledger_dir,
    diff_runs,
    make_record,
)


def _record(workload="Test1@0.2", config=None, **fields):
    return make_record("bench", workload, config or {"scale": 0.2}, **fields)


class TestRunRecord:
    def test_roundtrip(self):
        rec = _record(
            outcome="ok",
            wall_s=1.25,
            phases={"search": 0.8},
            counters={"astar_searches_total": 21.0},
            resources={"peak_rss_mb": 120.0},
            parallel_decision={"decision": "serial", "reason": "tiny"},
        )
        back = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back.run_id == rec.run_id
        assert back.config_hash == rec.config_hash
        assert back.phases == {"search": 0.8}
        assert back.parallel_decision["decision"] == "serial"
        assert back.peak_rss_mb == 120.0

    def test_config_hash_is_stable_and_order_insensitive(self):
        a = make_record("bench", "w", {"x": 1, "y": 2})
        b = make_record("bench", "w", {"y": 2, "x": 1})
        c = make_record("bench", "w", {"x": 1, "y": 3})
        assert a.config_hash == b.config_hash
        assert a.config_hash != c.config_hash

    def test_provenance_attached(self):
        rec = _record()
        assert "repro" in rec.provenance
        assert "python" in rec.provenance


class TestLedger:
    def test_record_and_get(self, tmp_path):
        with Ledger(tmp_path / "runs") as led:
            rec = _record(wall_s=0.5)
            led.record(rec)
            got = led.get(rec.run_id)
        assert got.run_id == rec.run_id
        assert got.wall_s == 0.5

    def test_get_by_unique_prefix_and_ambiguity(self, tmp_path):
        with Ledger(tmp_path / "runs") as led:
            a = _record()
            b = _record()
            led.record(a)
            led.record(b)
            assert led.get(a.run_id[:20] + a.run_id[20:]).run_id == a.run_id
            with pytest.raises(KeyError):
                led.get("r")  # matches both
            with pytest.raises(KeyError):
                led.get("r19700101-000000-000000")  # matches none

    def test_history_newest_first_with_filters(self, tmp_path):
        with Ledger(tmp_path / "runs") as led:
            r1 = _record(workload="Test1@0.2", ts=100.0)
            r2 = _record(workload="Test2@0.2", ts=200.0)
            r3 = _record(workload="Test1@0.2", ts=300.0)
            for rec in (r1, r2, r3):
                led.record(rec)
            all_runs = led.history()
            assert [r.run_id for r in all_runs] == [
                r3.run_id,
                r2.run_id,
                r1.run_id,
            ]
            only_t1 = led.history(workload="Test1@0.2")
            assert [r.run_id for r in only_t1] == [r3.run_id, r1.run_id]
            assert led.history(limit=1)[0].run_id == r3.run_id

    def test_latest_with_filters(self, tmp_path):
        with Ledger(tmp_path / "runs") as led:
            ok = _record(ts=100.0, outcome="ok")
            bad = _record(ts=200.0, outcome="error")
            led.record(ok)
            led.record(bad)
            assert led.latest(outcome="ok").run_id == ok.run_id
            assert led.latest().run_id == bad.run_id
            assert led.latest(workload="nope") is None

    def test_index_rebuilt_after_sqlite_deleted(self, tmp_path):
        root = tmp_path / "runs"
        with Ledger(root) as led:
            rec = _record()
            led.record(rec)
        (root / "index.sqlite").unlink()
        with Ledger(root) as led:
            assert len(led) == 1
            assert led.get(rec.run_id).config_hash == rec.config_hash

    def test_jsonl_is_append_only_source_of_truth(self, tmp_path):
        root = tmp_path / "runs"
        with Ledger(root) as led:
            led.record(_record())
            size_one = (root / "records.jsonl").stat().st_size
            led.record(_record())
            size_two = (root / "records.jsonl").stat().st_size
        assert size_two > size_one
        # a record appended by another process is picked up on open
        extra = _record(wall_s=9.0)
        with (root / "records.jsonl").open("a") as fh:
            fh.write(json.dumps(extra.to_dict()) + "\n")
        with Ledger(root) as led:
            assert len(led) == 3
            assert led.get(extra.run_id).wall_s == 9.0

    def test_reindex_skips_corrupt_lines(self, tmp_path):
        root = tmp_path / "runs"
        with Ledger(root) as led:
            led.record(_record())
        with (root / "records.jsonl").open("a") as fh:
            fh.write("{not json\n")
        with Ledger(root) as led:
            assert led.reindex() == 1

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger_dir() == str(tmp_path / "elsewhere")
        with Ledger() as led:
            assert led.root == tmp_path / "elsewhere"


class TestDiff:
    def test_identical_runs_verdict_ok(self):
        a = _record(wall_s=1.0, phases={"search": 0.5}, counters={"c": 100.0})
        b = _record(wall_s=1.0, phases={"search": 0.5}, counters={"c": 100.0})
        diff = diff_runs(a, b)
        assert diff.verdict == "ok"
        assert diff.comparable
        assert not diff.regressions

    def test_wall_regression_needs_pct_and_floor(self):
        a = _record(wall_s=1.0)
        assert diff_runs(a, _record(wall_s=1.5)).verdict == "regression"
        # +40% but only 4 ms: under the absolute floor, still ok
        tiny_a = _record(wall_s=0.010)
        tiny_b = _record(wall_s=0.014)
        assert diff_runs(tiny_a, tiny_b).verdict == "ok"
        # big in absolute terms but under the fractional threshold
        assert diff_runs(a, _record(wall_s=1.1)).verdict == "ok"

    def test_counter_and_phase_regressions_reported(self):
        a = _record(phases={"search": 1.0}, counters={"exp": 1000.0})
        b = _record(phases={"search": 2.0}, counters={"exp": 2000.0})
        diff = diff_runs(a, b)
        names = {(row.section, row.name) for row in diff.regressions}
        assert ("phase", "search") in names
        assert ("counter", "exp") in names

    def test_improvement_flagged_not_regression(self):
        a = _record(wall_s=2.0)
        b = _record(wall_s=1.0)
        diff = diff_runs(a, b)
        assert diff.verdict == "ok"
        assert any(row.flag == "improvement" for row in diff.rows)

    def test_peak_rss_gates_mean_rss_does_not(self):
        a = _record(resources={"peak_rss_mb": 100.0, "mean_rss_mb": 80.0})
        worse_mean = _record(
            resources={"peak_rss_mb": 100.0, "mean_rss_mb": 140.0}
        )
        assert diff_runs(a, worse_mean).verdict == "ok"
        worse_peak = _record(
            resources={"peak_rss_mb": 160.0, "mean_rss_mb": 80.0}
        )
        assert diff_runs(a, worse_peak).verdict == "regression"

    def test_differing_configs_not_comparable(self):
        a = make_record("bench", "w", {"scale": 0.1})
        b = make_record("bench", "w", {"scale": 0.2})
        diff = diff_runs(a, b)
        assert not diff.comparable
        assert "configs differ" in diff.to_text()

    def test_to_text_mentions_parallel_decision_and_verdict(self):
        a = _record(parallel_decision={"decision": "serial", "reason": "why"})
        b = _record()
        text = diff_runs(a, b).to_text()
        assert "parallel decision A: serial" in text
        assert "verdict:" in text

    def test_custom_thresholds(self):
        a = _record(wall_s=1.0)
        b = _record(wall_s=1.1)
        strict = DiffThresholds(wall_pct=0.05, wall_min_s=0.01)
        assert diff_runs(a, b, strict).verdict == "regression"

    def test_to_dict_shape(self):
        diff = diff_runs(_record(wall_s=1.0), _record(wall_s=1.0))
        payload = diff.to_dict()
        assert payload["verdict"] == "ok"
        assert payload["rows"][0]["name"] == "wall_s"

"""Unit tests for the span tracer and the module-level backend switch."""

import pytest

from repro import obs
from repro.obs.tracer import Tracer


class TestSpans:
    def test_nesting_builds_parent_links(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert tr.current() is inner
            assert tr.current() is outer
        assert tr.current() is None
        by_name = {sp.name: sp for sp in tr.finished}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_timing_monotonicity(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {sp.name: sp for sp in tr.finished}
        outer, inner = by_name["outer"], by_name["inner"]
        for sp in (outer, inner):
            assert sp.finished
            assert sp.end_s >= sp.start_s
            assert sp.duration_s >= 0.0
        # child starts after parent, ends before it
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s <= outer.duration_s

    def test_span_recorded_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.spans_named("boom")[0].finished

    def test_attrs_and_aggregation(self):
        tr = Tracer()
        with tr.span("work", net_id=7):
            pass
        with tr.span("work", net_id=8):
            pass
        assert tr.counts_by_name() == {"work": 2}
        assert tr.totals_by_name()["work"] >= 0.0
        assert [sp.attrs["net_id"] for sp in tr.spans_named("work")] == [7, 8]

    def test_tree_and_text(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        tree = tr.tree()
        assert len(tree[None]) == 1
        text = tr.to_text()
        assert "a" in text and "b" in text


class TestBackendSwitch:
    def test_disabled_by_default(self):
        obs.disable()
        assert obs.get_active() is None
        assert not obs.is_enabled()

    def test_noop_backend_produces_zero_events(self):
        obs.disable()
        with obs.span("anything", k=1):
            obs.counter_inc("whatever_total")
        with obs.stopwatch("timed") as sw:
            pass
        assert sw.duration_s >= 0.0
        # still nothing recorded anywhere
        ob = obs.enable()
        assert ob.tracer.finished == []
        assert len(ob.registry) == 0
        obs.disable()

    def test_enable_records(self):
        ob = obs.enable()
        with obs.span("x"):
            obs.counter_inc("c_total", 3)
        assert [sp.name for sp in ob.tracer.finished] == ["x"]
        assert ob.registry.value("c_total") == 3.0
        obs.disable()

    def test_enable_fresh_resets(self):
        ob1 = obs.enable()
        obs.counter_inc("c_total")
        ob2 = obs.enable()  # fresh=True default
        assert ob2 is not ob1
        assert ob2.registry.value("c_total") == 0.0
        obs.disable()

    def test_enable_not_fresh_keeps_backend(self):
        ob1 = obs.enable()
        assert obs.enable(fresh=False) is ob1
        obs.disable()

    def test_session_restores_previous(self):
        obs.disable()
        with obs.session() as ob:
            assert obs.get_active() is ob
        assert obs.get_active() is None

    def test_stopwatch_records_span_when_enabled(self):
        with obs.session() as ob:
            with obs.stopwatch("route_all") as sw:
                pass
            assert sw.duration_s >= 0.0
            assert [sp.name for sp in ob.tracer.finished] == ["route_all"]

"""Disabled-mode allocation guarantees and run-log validator extensions."""

import json

import pytest

from repro import obs
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.obs.export import export_run_jsonl, validate_run_jsonl
from repro.router import SadpRouter


def _route_small():
    grid = RoutingGrid(24, 24)
    nets = Netlist()
    nets.add(
        Net(net_id=0, name="n0", source=Pin.at(2, 3), target=Pin.at(18, 3))
    )
    nets.add(
        Net(net_id=1, name="n1", source=Pin.at(2, 9), target=Pin.at(18, 9))
    )
    router = SadpRouter(grid, nets)
    return router.route_all()


class TestDisabledMode:
    def test_routing_allocates_no_obs_backend(self, monkeypatch):
        """With observability off, the hot paths must not construct any
        registry/tracer/backend object — the instrumentation is a
        predicate per call site and nothing more."""
        from repro.obs import metrics, tracer

        def _boom(self, *args, **kwargs):
            raise AssertionError(
                "observability object constructed while disabled"
            )

        monkeypatch.setattr(metrics.MetricsRegistry, "__init__", _boom)
        monkeypatch.setattr(tracer.Tracer, "__init__", _boom)
        monkeypatch.setattr(obs.Observability, "__init__", _boom)
        obs.disable()
        result = _route_small()
        assert result.routed_count == 2

    def test_span_helper_returns_shared_null_span(self):
        obs.disable()
        assert obs.span("x") is obs.span("y")

    def test_counter_inc_is_noop(self):
        obs.disable()
        obs.counter_inc("anything_total", 5)  # must not raise or allocate


def _write_log(tmp_path, records):
    path = tmp_path / "run.jsonl"
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def _meta():
    return {"type": "meta", "schema": 1, "tool": "repro", "version": "x"}


def _span(span_id=1, parent_id=None, start=0.0, end=1.0, duration=None):
    return {
        "type": "span",
        "name": "s",
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": start,
        "end_s": end,
        "duration_s": (end - start) if duration is None else duration,
        "attrs": {},
    }


class TestValidatorExtensions:
    def test_valid_exported_log_passes(self, tmp_path):
        with obs.session() as ob:
            with ob.tracer.span("route_all"):
                with ob.tracer.span("astar_search"):
                    pass
            ob.registry.counter("x_total").inc()
            ob.start_resource_sampler(interval_s=0.005)
            ob.sampler.stop()
            path = export_run_jsonl(tmp_path / "run.jsonl")
        assert validate_run_jsonl(path) == []

    def test_orphaned_parent_rejected(self, tmp_path):
        path = _write_log(tmp_path, [_meta(), _span(span_id=2, parent_id=99)])
        problems = validate_run_jsonl(path)
        assert any("orphaned span" in p for p in problems)

    def test_negative_duration_rejected(self, tmp_path):
        path = _write_log(
            tmp_path, [_meta(), _span(start=1.0, end=2.0, duration=-0.5)]
        )
        assert any(
            "negative span duration" in p for p in validate_run_jsonl(path)
        )

    def test_unended_span_rejected(self, tmp_path):
        record = _span()
        record["end_s"] = None
        path = _write_log(tmp_path, [_meta(), record])
        assert any("never ended" in p for p in validate_run_jsonl(path))

    def test_end_before_start_rejected(self, tmp_path):
        path = _write_log(
            tmp_path, [_meta(), _span(start=5.0, end=1.0, duration=4.0)]
        )
        assert any("ends before it starts" in p for p in validate_run_jsonl(path))

    def test_duplicate_resource_record_rejected(self, tmp_path):
        resource = {"type": "resource", "summary": {}, "by_span": {}}
        path = _write_log(tmp_path, [_meta(), resource, dict(resource)])
        assert any("duplicate resource" in p for p in validate_run_jsonl(path))

    def test_cli_validate_trace_rejects_broken_log(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_log(tmp_path, [_meta(), _span(span_id=2, parent_id=99)])
        assert main(["validate-trace", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestCollapsedStacks:
    def test_folds_self_time_along_stack_paths(self, tmp_path):
        records = [
            _meta(),
            _span(span_id=1, start=0.0, end=1.0),
            _span(span_id=2, parent_id=1, start=0.1, end=0.5),
        ]
        records[1]["name"] = "route_all"
        records[2]["name"] = "astar search"  # space must be sanitized
        path = _write_log(tmp_path, records)
        from repro.obs import collapsed_stacks

        lines = collapsed_stacks(path)
        folded = dict(line.rsplit(" ", 1) for line in lines)
        assert folded["route_all"] == str(int(0.6 * 1e6))
        assert folded["route_all;astar_search"] == str(int(0.4 * 1e6))

    def test_cli_flame_prints_folded_lines(self, tmp_path, capsys):
        from repro.cli import main

        with obs.session() as ob:
            with ob.tracer.span("route_all"):
                with ob.tracer.span("astar_search"):
                    total = sum(range(20000))
            assert total >= 0
            path = export_run_jsonl(tmp_path / "run.jsonl")
        assert main(["obs", "flame", str(path)]) == 0
        out = capsys.readouterr().out
        assert "route_all" in out

    def test_cli_flame_empty_log_fails(self, tmp_path):
        from repro.cli import main

        path = _write_log(tmp_path, [_meta()])
        assert main(["obs", "flame", str(path)]) == 1

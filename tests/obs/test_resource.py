"""Resource sampler: collection, span attribution, and the overhead gate."""

import time

from repro.obs.resource import (
    ResourceSampler,
    gc_collections,
    read_rss_bytes,
)
from repro.obs.tracer import Tracer


def _busy(seconds):
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


class TestReaders:
    def test_rss_positive_on_this_platform(self):
        assert read_rss_bytes() > 0

    def test_gc_collections_non_negative(self):
        assert gc_collections() >= 0


class TestSampler:
    def test_collects_samples_while_running(self):
        sampler = ResourceSampler(interval_s=0.005)
        sampler.start()
        _busy(0.05)
        sampler.stop()
        assert len(sampler.samples) >= 2
        assert all(s.rss_bytes > 0 for s in sampler.samples)
        assert all(s.threads >= 1 for s in sampler.samples)

    def test_attributes_samples_to_active_leaf_span(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, interval_s=0.005)
        sampler.start()
        with tracer.span("outer"):
            with tracer.span("inner_hot"):
                _busy(0.08)
        sampler.stop()
        names = {n for s in sampler.samples for n in s.span_names}
        assert "inner_hot" in names
        by_span = sampler.by_span()
        assert by_span["inner_hot"]["samples"] >= 1
        assert by_span["inner_hot"]["peak_rss_mb"] > 0

    def test_summary_keys_and_values(self):
        sampler = ResourceSampler(interval_s=0.005)
        sampler.start()
        _busy(0.03)
        sampler.stop()
        summary = sampler.summary()
        for key in (
            "samples",
            "duration_s",
            "peak_rss_mb",
            "mean_rss_mb",
            "mean_cpu_pct",
            "max_cpu_pct",
            "max_threads",
            "gc_collections",
        ):
            assert key in summary
        assert summary["peak_rss_mb"] >= summary["mean_rss_mb"] > 0
        assert summary["samples"] == len(sampler.samples)

    def test_empty_summary_when_never_started(self):
        sampler = ResourceSampler()
        assert sampler.summary() == {}
        assert sampler.by_span() == {}

    def test_stop_without_start_and_double_stop_are_safe(self):
        sampler = ResourceSampler()
        sampler.stop()
        assert sampler.samples == []
        sampler.start()
        sampler.stop()
        n = len(sampler.samples)
        sampler.stop()
        assert len(sampler.samples) == n

    def test_restart_keeps_accumulating(self):
        sampler = ResourceSampler(interval_s=0.005)
        sampler.start()
        _busy(0.02)
        sampler.stop()
        first = len(sampler.samples)
        sampler.start()
        _busy(0.02)
        sampler.stop()
        assert len(sampler.samples) > first

    def test_overhead_per_sample_within_two_percent_budget(self):
        """The sampler must cost <= 2% of a 10 Hz cadence: at 100 ms per
        sample window, that is 2 ms per sample. Time the exact per-wake
        work (``sample_once``) over many iterations; the deterministic
        per-call bound gates overhead without a flaky wall-clock A/B."""
        tracer = Tracer()
        with tracer.span("load"):
            sampler = ResourceSampler(tracer, interval_s=0.1)
            sampler.start()  # realistic: reader thread is live
            rounds = 200
            t0 = time.perf_counter()
            for _ in range(rounds):
                sampler.sample_once()
            per_sample_s = (time.perf_counter() - t0) / rounds
            sampler.stop()
        assert per_sample_s <= 0.002, (
            f"sample_once costs {per_sample_s * 1e3:.3f} ms "
            f"(> 2% of the 10 Hz budget)"
        )

    def test_decimation_bounds_memory(self, monkeypatch):
        import repro.obs.resource as resource_mod

        monkeypatch.setattr(resource_mod, "MAX_SAMPLES", 8)
        sampler = ResourceSampler(interval_s=0.001)
        sampler.start()
        deadline = time.perf_counter() + 1.0
        while len(sampler.samples) <= 4 and time.perf_counter() < deadline:
            time.sleep(0.002)
        sampler.stop()
        # the 2:1 decimation keeps the list near the cap, never unbounded
        assert len(sampler.samples) <= 2 * 8

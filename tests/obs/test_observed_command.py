"""CLI observability wiring: the ledger default, obs subcommands, prom flag."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.ledger import Ledger


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "nets.txt"
    path.write_text("n0 L0 2,2 -> L0 17,2\nn1 L0 2,8 -> L0 17,8\n")
    return str(path)


def _route(netlist_file, *extra):
    return main(
        ["route", netlist_file, "--width", "24", "--height", "24", *extra]
    )


class TestLedgerRecording:
    def test_route_records_by_default(self, netlist_file, tmp_path, monkeypatch):
        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        assert _route(netlist_file) == 0
        with Ledger(ledger_dir) as led:
            runs = led.history()
        assert len(runs) == 1
        record = runs[0]
        assert record.command == "route"
        assert record.outcome == "ok"
        assert record.wall_s > 0
        assert record.counters.get("nets_routed_total") == 2.0
        assert "search" in record.phases
        assert record.resources.get("peak_rss_mb", 0) > 0
        assert "repro" in record.provenance

    def test_no_ledger_opts_out(self, netlist_file, tmp_path, monkeypatch):
        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        assert _route(netlist_file, "--no-ledger") == 0
        assert not (ledger_dir / "records.jsonl").exists()
        assert obs.get_active() is None  # wiring never leaks the backend

    def test_ledger_dir_flag_beats_env(self, netlist_file, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        assert _route(netlist_file, "--ledger-dir", str(explicit)) == 0
        with Ledger(explicit) as led:
            assert len(led) == 1

    def test_bench_records_workload_at_scale(self, tmp_path, monkeypatch):
        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        assert main(["bench", "Test1", "--scale", "0.1"]) == 0
        with Ledger(ledger_dir) as led:
            record = led.history()[0]
        assert record.command == "bench"
        assert record.workload == "Test1@0.1"

    def test_auto_workers_decision_lands_in_record(
        self, tmp_path, monkeypatch
    ):
        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        assert main(
            ["bench", "Test1", "--scale", "0.1", "--workers", "auto"]
        ) == 0
        with Ledger(ledger_dir) as led:
            record = led.history()[0]
        assert record.parallel_decision is not None
        assert record.parallel_decision["decision"] in ("serial", "parallel")
        assert "reason" in record.parallel_decision


class TestObsSubcommands:
    def _two_runs(self, netlist_file, ledger_dir, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        assert _route(netlist_file) == 0
        assert _route(netlist_file) == 0
        with Ledger(ledger_dir) as led:
            runs = led.history()
        return [r.run_id for r in reversed(runs)]  # oldest first

    def test_history_lists_runs(self, netlist_file, tmp_path, monkeypatch, capsys):
        ids = self._two_runs(netlist_file, tmp_path / "runs", monkeypatch)
        assert main(["obs", "history"]) == 0
        out = capsys.readouterr().out
        for run_id in ids:
            assert run_id in out

    def test_history_empty_ledger(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "none"))
        assert main(["obs", "history"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_diff_two_comparable_runs(
        self, netlist_file, tmp_path, monkeypatch, capsys
    ):
        run_a, run_b = self._two_runs(netlist_file, tmp_path / "runs", monkeypatch)
        assert main(["obs", "diff", run_a, run_b, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "wall_s" in out
        assert "peak_rss_mb" in out

    def test_diff_json_output(self, netlist_file, tmp_path, monkeypatch, capsys):
        run_a, run_b = self._two_runs(netlist_file, tmp_path / "runs", monkeypatch)
        capsys.readouterr()  # drain the route commands' own output
        assert main(["obs", "diff", run_a, run_b, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["a"] == run_a
        assert payload["verdict"] in ("ok", "regression")

    def test_diff_gate_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        from repro.obs.ledger import make_record

        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        with Ledger(ledger_dir) as led:
            a = make_record("bench", "w", {}, wall_s=1.0)
            b = make_record("bench", "w", {}, wall_s=3.0)
            led.record(a)
            led.record(b)
        assert main(["obs", "diff", a.run_id, b.run_id, "--gate"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_show_dumps_record_json(self, netlist_file, tmp_path, monkeypatch, capsys):
        (run_a, _) = self._two_runs(netlist_file, tmp_path / "runs", monkeypatch)
        capsys.readouterr()  # drain the route commands' own output
        assert main(["obs", "show", run_a]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == run_a
        assert payload["command"] == "route"


class TestPromFlag:
    def test_prom_port_serves_during_command(
        self, netlist_file, tmp_path, monkeypatch, capsys
    ):
        # port 0 binds a free port; the exporter line reports it on stderr
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "runs"))
        assert _route(netlist_file, "--prom-port", "0") == 0
        err = capsys.readouterr().err
        assert "/metrics" in err


class TestTraceStillWorks:
    def test_trace_export_includes_resource_record(
        self, netlist_file, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "runs"))
        trace = tmp_path / "run.jsonl"
        assert _route(netlist_file, "--trace", str(trace)) == 0
        types = [
            json.loads(line)["type"]
            for line in trace.read_text().splitlines()
        ]
        assert types[0] == "meta"
        assert "span" in types
        from repro.obs import validate_run_jsonl

        assert validate_run_jsonl(trace) == []

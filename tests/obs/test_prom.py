"""Prometheus exposition: format validity, summaries, the HTTP exporter."""

import urllib.error
import urllib.request

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    PromExporter,
    sanitize_name,
    start_http_exporter,
    to_prometheus,
    validate_prometheus_text,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("nets_routed_total").inc(21)
    reg.counter("ripups_total", reason="cut_conflict").inc(3)
    reg.counter("ripups_total", reason="overlay").inc(1)
    reg.gauge("queue_depth").set(7)
    h = reg.histogram("net_route_seconds")
    for v in (0.01, 0.02, 0.03, 0.4):
        h.observe(v)
    return reg


class TestExposition:
    def test_output_is_valid_line_by_line(self):
        text = to_prometheus(_registry())
        assert validate_prometheus_text(text) == []

    def test_counters_and_gauges_one_to_one(self):
        text = to_prometheus(_registry())
        assert "# TYPE nets_routed_total counter" in text
        assert "nets_routed_total 21" in text
        assert 'ripups_total{reason="cut_conflict"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7" in text

    def test_histogram_exposed_as_summary(self):
        text = to_prometheus(_registry())
        assert "# TYPE net_route_seconds summary" in text
        assert 'net_route_seconds{quantile="0.5"}' in text
        assert 'net_route_seconds{quantile="0.95"}' in text
        assert "net_route_seconds_count 4" in text
        assert "net_route_seconds_sum 0.46" in text

    def test_zero_count_histogram_exposes_full_family(self):
        reg = MetricsRegistry()
        reg.histogram("empty_seconds")
        text = to_prometheus(reg)
        assert validate_prometheus_text(text) == []
        assert "empty_seconds_count 0" in text
        assert 'empty_seconds{quantile="0.5"} 0' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='a"b\\c\nd').inc()
        text = to_prometheus(reg)
        assert validate_prometheus_text(text) == []
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_metric_names_sanitized(self):
        assert sanitize_name("a.b-c") == "a_b_c"
        assert sanitize_name("0abc").startswith("_")
        reg = MetricsRegistry()
        reg.counter("weird.name-total").inc()
        text = to_prometheus(reg)
        assert validate_prometheus_text(text) == []
        assert "weird_name_total 1" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert validate_prometheus_text("") == []

    def test_registry_method_delegates(self):
        reg = _registry()
        assert reg.to_prometheus() == to_prometheus(reg)


class TestValidator:
    def test_rejects_malformed_sample(self):
        assert validate_prometheus_text("not a metric line!\n")

    def test_rejects_sample_without_type(self):
        assert any(
            "no TYPE" in p for p in validate_prometheus_text("orphan 1\n")
        )

    def test_rejects_duplicate_type(self):
        text = "# TYPE a counter\na 1\n# TYPE a counter\n"
        assert any("duplicate TYPE" in p for p in validate_prometheus_text(text))

    def test_rejects_missing_trailing_newline(self):
        text = "# TYPE a counter\na 1"
        assert any("newline" in p for p in validate_prometheus_text(text))

    def test_sum_count_belong_to_summary_family(self):
        text = "# TYPE s summary\ns_sum 1.5\ns_count 3\n"
        assert validate_prometheus_text(text) == []


class TestExporter:
    def test_scrape_pinned_registry(self):
        exporter = PromExporter(registry=_registry()).start()
        try:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
        finally:
            exporter.stop()
        assert validate_prometheus_text(body) == []
        assert "nets_routed_total 21" in body

    def test_scrape_follows_active_backend(self):
        exporter = start_http_exporter(port=0)
        url = f"http://127.0.0.1:{exporter.port}/metrics"
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert "no active metrics registry" in resp.read().decode()
            with obs.session() as ob:
                ob.registry.counter("live_total").inc(5)
                with urllib.request.urlopen(url, timeout=5) as resp:
                    assert "live_total 5" in resp.read().decode()
        finally:
            exporter.stop()

    def test_unknown_path_is_404(self):
        exporter = PromExporter(registry=_registry()).start()
        try:
            url = f"http://127.0.0.1:{exporter.port}/nope"
            try:
                urllib.request.urlopen(url, timeout=5)
                assert False, "expected HTTP 404"
            except urllib.error.HTTPError as err:
                assert err.code == 404
        finally:
            exporter.stop()

    def test_stop_is_idempotent(self):
        exporter = PromExporter(registry=MetricsRegistry()).start()
        exporter.stop()
        exporter.stop()

"""Integration: a real route_all run emits the documented span tree and
metric names, and the no-op default leaves instrumented code silent."""

import pytest

from repro import obs
from repro.bench import FIXED_PIN_BENCHMARKS, run_proposed
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.obs.export import export_run_jsonl, validate_run_jsonl
from repro.router import SadpRouter


def _small_problem():
    grid = RoutingGrid(26, 26)
    nets = Netlist(
        [
            Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
            Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
            Net(2, "c", Pin.at(4, 10), Pin.at(18, 16)),
        ]
    )
    return grid, nets


class TestInstrumentedRun:
    @pytest.fixture
    def run(self):
        with obs.session() as ob:
            grid, nets = _small_problem()
            result = SadpRouter(grid, nets).route_all()
            yield ob, result

    def test_expected_span_tree(self, run):
        ob, result = run
        by_name = {sp.name: sp for sp in ob.tracer.finished}
        assert "route_all" in by_name
        assert by_name["route_all"].parent_id is None
        # every route_net hangs under route_all (or under another
        # route_net, for chained evictions)
        root_id = by_name["route_all"].span_id
        route_nets = ob.tracer.spans_named("route_net")
        assert len(route_nets) >= len(result.routes)
        route_net_ids = {sp.span_id for sp in route_nets}
        assert all(
            sp.parent_id == root_id or sp.parent_id in route_net_ids
            for sp in route_nets
        )
        # every search hangs under some route_net
        searches = ob.tracer.spans_named("astar_search")
        assert searches
        assert all(sp.parent_id in route_net_ids for sp in searches)
        # graph updates and coloring happened inside route_net spans too
        for name in ("ocg_update", "pseudo_color"):
            assert ob.tracer.spans_named(name), f"missing {name} spans"

    def test_expected_metric_names(self, run):
        ob, _ = run
        names = set(ob.registry.names())
        assert {
            "astar_searches_total",
            "astar_nodes_expanded_total",
            "astar_heap_pushes_total",
            "astar_heap_pops_total",
            "nets_routed_total",
            "ocg_edges_added_total",
            "uf_find_ops_total",
            "uf_union_ops_total",
            "route_net_seconds",
        } <= names

    def test_heap_accounting_consistent(self, run):
        ob, _ = run
        pushes = ob.registry.total("astar_heap_pushes_total")
        pops = ob.registry.total("astar_heap_pops_total")
        expanded = ob.registry.total("astar_nodes_expanded_total")
        assert 0 < pops <= pushes
        assert 0 < expanded <= pops

    def test_route_all_duration_covers_phases(self, run):
        ob, result = run
        totals = ob.tracer.totals_by_name()
        assert totals["route_all"] == pytest.approx(result.cpu_seconds, rel=1e-6)
        children = (
            totals.get("astar_search", 0.0)
            + totals.get("ocg_update", 0.0)
            + totals.get("pseudo_color", 0.0)
        )
        assert children <= totals["route_all"]

    def test_run_log_round_trip(self, run, tmp_path):
        ob, _ = run
        path = export_run_jsonl(tmp_path / "run.jsonl", observability=ob)
        assert validate_run_jsonl(path) == []


class TestDisabledRun:
    def test_no_events_and_result_unchanged(self):
        obs.disable()
        grid, nets = _small_problem()
        result = SadpRouter(grid, nets).route_all()
        assert result.cpu_seconds > 0.0
        assert obs.get_active() is None
        # enabling *after* the run shows an empty backend: nothing leaked
        ob = obs.enable()
        assert ob.tracer.finished == []
        assert len(ob.registry) == 0
        obs.disable()

    def test_results_identical_with_and_without_obs(self):
        obs.disable()
        grid, nets = _small_problem()
        plain = SadpRouter(grid, nets).route_all()
        with obs.session():
            grid2, nets2 = _small_problem()
            observed = SadpRouter(grid2, nets2).route_all()
        assert plain.routability == observed.routability
        assert plain.total_wirelength == observed.total_wirelength
        assert plain.overlay_units == observed.overlay_units


class TestBenchPhases:
    def test_bench_row_gains_phase_columns(self):
        from repro.bench.runner import rows_to_table

        with obs.session():
            row = run_proposed(FIXED_PIN_BENCHMARKS[0], scale=0.1)
        assert row.has_phases
        assert row.search_s > 0.0
        assert row.graph_s > 0.0
        table = rows_to_table([row])
        assert "search(s)" in table and "graph(s)" in table and "flip(s)" in table

    def test_bench_row_without_obs_keeps_plain_table(self):
        from repro.bench.runner import rows_to_table

        obs.disable()
        row = run_proposed(FIXED_PIN_BENCHMARKS[0], scale=0.1)
        assert not row.has_phases
        assert "search(s)" not in rows_to_table([row])

"""Unit tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("ripups_total", reason="cut_conflict")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_same_name_and_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a="1", b="2").inc()
        # label order must not matter
        assert reg.counter("x_total", b="2", a="1").value == 1.0

    def test_different_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x_total", reason="a").inc()
        reg.counter("x_total", reason="b").inc(2)
        assert reg.value("x_total", reason="a") == 1.0
        assert reg.value("x_total", reason="b") == 2.0
        assert reg.total("x_total") == 3.0

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_non_string_label_values_coerced(self):
        reg = MetricsRegistry()
        reg.counter("x_total", layer=0).inc()
        assert reg.value("x_total", layer="0") == 1.0


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(10.0)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)

    def test_empty_summary(self):
        s = Histogram("empty").summary()
        assert s["count"] == 0
        assert s["sum"] == 0.0

    def test_quantiles_ordered(self):
        h = Histogram("q")
        for v in range(101):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(0.95)

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("q").quantile(1.5)

    def test_reservoir_stays_bounded(self):
        h = Histogram("big")
        for v in range(20_000):
            h.observe(float(v))
        assert h.count == 20_000
        assert len(h._reservoir) <= Histogram.RESERVOIR_SIZE
        # exact stats unaffected by decimation
        assert h.min == 0.0 and h.max == 19_999.0


class TestRegistry:
    def test_len_iter_names(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.gauge("b")
        reg.histogram("c").observe(1)
        assert len(reg) == 3
        assert reg.names() == ["a_total", "b", "c"]
        assert len(list(reg)) == 3

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("a_total", k="v").inc(2)
        reg.histogram("h").observe(5)
        snap = {(e["metric"], e["kind"]): e for e in reg.snapshot()}
        assert snap[("a_total", "counter")]["value"] == 2.0
        assert snap[("a_total", "counter")]["labels"] == {"k": "v"}
        assert snap[("h", "histogram")]["value"]["count"] == 1

    def test_to_text_stable(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total").inc()
        text = reg.to_text()
        assert text.index("a_total") < text.index("z_total")

    def test_value_of_untouched_metric_is_zero(self):
        assert MetricsRegistry().value("nope_total") == 0.0

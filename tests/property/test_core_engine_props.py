"""Property-based equivalence tests for the vectorized core engine.

The SoA constraint graph, the batch edge store, the vector scenario
detector, and the bulk grid writes are all pure representation changes:
on any input they must reproduce the object-per-edge reference exactly.
These tests drive randomized inputs through both implementations —
forcing the scalar *and* the wide numpy paths of each — and assert
bit-identical outcomes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstraintEdge,
    EdgeStore,
    OverlayConstraintGraph,
    ScenarioDetector,
    ScenarioType,
    SoAOverlayConstraintGraph,
    VectorScenarioDetector,
)
from repro.core import constraint_graph_soa, scenario_detect
from repro.core.color_flip import brute_force_coloring, flip_colors
from repro.core.edge_store import SCENARIO_ORDER
from repro.errors import ColoringError, GridError
from repro.geometry import Point, Segment
from repro.grid import CellState, RoutingGrid

NODES = list(range(10))

soft_types = st.sampled_from(
    [
        ScenarioType.T2A,
        ScenarioType.T2B,
        ScenarioType.T3A,
        ScenarioType.T3B,
        ScenarioType.T3C,
        ScenarioType.T3D,
    ]
)
hard_types = st.sampled_from([ScenarioType.T1A, ScenarioType.T1B])
any_types = st.one_of(soft_types, hard_types)

graph_edges = st.lists(
    st.tuples(
        st.sampled_from(NODES), st.sampled_from(NODES), any_types,
        st.booleans(), st.integers(1, 4),
    ).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=12,
)


def _build_pair(edges):
    """The same random edge set in both graph implementations."""
    obj = OverlayConstraintGraph()
    soa = SoAOverlayConstraintGraph()
    obj_off = obj.add_edges(
        ConstraintEdge.from_scenario(u, v, t, tip, ov)
        for u, v, t, tip, ov in edges
    )
    soa_off = soa.add_edges(
        ConstraintEdge.from_scenario(u, v, t, tip, ov)
        for u, v, t, tip, ov in edges
    )
    return obj, soa, obj_off, soa_off


def _dp_total(graph, coloring):
    from repro.color import Color

    return sum(
        e.dp_cost(coloring.get(e.u, Color.CORE), coloring.get(e.v, Color.CORE))
        for e in graph.edges
    )


class TestVectorFlipEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(graph_edges)
    def test_flip_matches_object_graph_and_bruteforce(self, edges):
        """flip_colors over the SoA graph returns the object graph's
        exact coloring, and on graphs of <= 10 units never beats (and on
        forests exactly matches) the brute-force optimum."""
        obj, soa, obj_off, soa_off = _build_pair(edges)
        assert [(e.u, e.v) for e in soa_off] == [(e.u, e.v) for e in obj_off]
        if obj_off:
            with pytest.raises(ColoringError):
                flip_colors(soa)
            return
        obj_colors = flip_colors(obj)
        soa_colors = flip_colors(soa)
        assert soa_colors == obj_colors
        total = _dp_total(soa, soa_colors)
        _, best = brute_force_coloring(soa, sorted(soa.vertices))
        assert total >= best
        assert total == _dp_total(obj, obj_colors)

    @settings(max_examples=50, deadline=None)
    @given(graph_edges)
    def test_scalar_and_numpy_contraction_agree(self, edges):
        """The <=32-net scalar contraction and the numpy contraction are
        interchangeable: forcing either on the same graph yields the
        same flip result."""
        _, soa, _, off = _build_pair(edges)
        if off:
            return
        small = constraint_graph_soa._SMALL
        try:
            constraint_graph_soa._SMALL = 10 ** 9  # always scalar
            scalar_colors = flip_colors(soa)
            constraint_graph_soa._SMALL = -1  # always numpy
            numpy_colors = flip_colors(soa)
        finally:
            constraint_graph_soa._SMALL = small
        assert scalar_colors == numpy_colors

    @settings(max_examples=40, deadline=None)
    @given(graph_edges)
    def test_evaluate_matches_object_graph(self, edges):
        obj, soa, obj_off, _ = _build_pair(edges)
        if obj_off:
            return
        colors = flip_colors(obj)
        ev_obj = obj.evaluate(colors)
        ev_soa = soa.evaluate(colors)
        assert ev_soa.overlay_units == ev_obj.overlay_units
        assert ev_soa.hard_violations == ev_obj.hard_violations
        assert ev_soa.cut_risks == ev_obj.cut_risks


scenario_rows = st.lists(
    st.tuples(
        st.sampled_from(NODES), st.sampled_from(NODES),
        st.integers(0, len(SCENARIO_ORDER) - 1),
        st.booleans(), st.integers(1, 4),
    ).filter(lambda r: r[0] != r[1]),
    min_size=1,
    max_size=80,
)


class TestEdgeStoreEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(scenario_rows)
    def test_batch_rows_match_from_scenario(self, rows):
        """Every appended row materializes to exactly the edge
        ``ConstraintEdge.from_scenario`` would build — across the scalar
        (small batch) and numpy (wide batch) fill paths, which this
        exercises by appending the same rows both one at a time and as
        one batch."""
        one = EdgeStore()
        for u, v, s, tip, ov in rows:
            one.append_scenarios([u], [v], [s], [tip], [ov])
        bulk = EdgeStore()
        bulk.append_scenarios(*zip(*rows))
        for store in (one, bulk):
            for i, (u, v, s, tip, ov) in enumerate(rows):
                want = ConstraintEdge.from_scenario(
                    u, v, SCENARIO_ORDER[s], tip, ov
                )
                got = store.materialize(i)
                assert (got.u, got.v) == (u, v)
                assert got.scenario == want.scenario
                assert got.kind == want.kind
                assert got.cost == want.cost
                assert got.cut_risk == want.cut_risk
                if want.kind.is_hard:
                    assert got.parity == want.parity
        np.testing.assert_array_equal(
            one.dp_cost(np.arange(len(rows))),
            bulk.dp_cost(np.arange(len(rows))),
        )

    @settings(max_examples=40, deadline=None)
    @given(scenario_rows)
    def test_lazy_sync_keeps_columns_coherent(self, rows):
        """Interleaving scalar appends with wide consumers (dp_cost
        forces a column sync) never loses or reorders rows."""
        store = EdgeStore()
        for i, (u, v, s, tip, ov) in enumerate(rows):
            store.append_scenarios([u], [v], [s], [tip], [ov])
            if i % 7 == 3:
                store.dp_cost(np.arange(store.size))
        store._sync()
        assert list(store.u[: store.size]) == [r[0] for r in rows]
        assert list(store.v[: store.size]) == [r[1] for r in rows]
        assert list(store.scenario[: store.size]) == [r[2] for r in rows]


coord = st.integers(min_value=0, max_value=30)
length = st.integers(min_value=0, max_value=10)


@st.composite
def segments(draw):
    x = draw(coord)
    y = draw(coord)
    run = draw(length)
    if draw(st.booleans()):
        return Segment(0, Point(x, y), Point(x + run, y))
    return Segment(0, Point(x, y), Point(x, y + run))


def _scenario_key(sc):
    return (
        sc.net_a, sc.net_b, sc.scenario, sc.a_is_tip_owner, sc.overlap,
        sc.rect_a, sc.rect_b,
    )


class TestDetectorEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(segments(), min_size=2, max_size=6,
                    unique_by=lambda s: (s.a, s.b)))
    def test_vector_detector_matches_object_detector(self, segs):
        """Committing the same random layout net by net yields the same
        scenario stream from both detector implementations."""
        obj = ScenarioDetector(num_layers=1)
        vec = VectorScenarioDetector(num_layers=1)
        for i, seg in enumerate(segs):
            got_obj = sorted(map(_scenario_key, obj.add_net(i, [seg])))
            got_vec = sorted(map(_scenario_key, vec.add_net(i, [seg])))
            assert got_vec == got_obj

    @settings(max_examples=40, deadline=None)
    @given(st.lists(segments(), min_size=2, max_size=6,
                    unique_by=lambda s: (s.a, s.b)))
    def test_scalar_and_numpy_scan_agree(self, segs):
        """The small-candidate scalar scan and the numpy scan classify
        identically, in the same order."""

        def run():
            vec = VectorScenarioDetector(num_layers=1)
            out = []
            for i, seg in enumerate(segs):
                out.extend(map(_scenario_key, vec.add_net(i, [seg])))
            return out

        small = scenario_detect._SMALL_SCAN
        try:
            scenario_detect._SMALL_SCAN = 10 ** 9  # always scalar
            scalar = run()
            scenario_detect._SMALL_SCAN = 0  # always numpy
            vectored = run()
        finally:
            scenario_detect._SMALL_SCAN = small
        assert scalar == vectored


cells = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 7), st.integers(0, 7)),
    min_size=0,
    max_size=60,
)


class TestOccupyManyEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(cells, st.integers(0, 2), st.integers(0, 7), st.integers(0, 7))
    def test_matches_scalar_loop(self, batch, other_net, ox, oy):
        """occupy_many (both the <48-cell loop and the numpy path) ends
        in the same grid state, notifications, and error behaviour as
        per-cell occupy — including around a foreign-owned cell."""

        class Recorder:
            def __init__(self):
                self.cells = []

            def on_cells_changed(self, changed):
                self.cells.extend(tuple(map(int, c)) for c in changed)

            def on_grid_reset(self):
                pass

        def build():
            grid = RoutingGrid(8, 8, rules=None)
            grid.occupy(other_net, Point(ox, oy), 99)
            rec = Recorder()
            grid.add_change_listener(rec)
            return grid, rec

        ref_grid, ref_rec = build()
        ref_err = None
        try:
            for layer, x, y in batch:
                ref_grid.occupy(layer, Point(x, y), 5)
        except GridError as exc:
            ref_err = str(exc)

        got_grid, got_rec = build()
        got_err = None
        try:
            got_grid.occupy_many(batch, 5)
        except GridError as exc:
            got_err = str(exc)

        assert got_err == ref_err
        assert sorted(got_rec.cells) == sorted(ref_rec.cells)
        np.testing.assert_array_equal(got_grid._occ, ref_grid._occ)

    def test_fast_path_partial_write_then_raise(self):
        grid = RoutingGrid(8, 8)
        grid.occupy(0, Point(3, 3), 9)
        seen = []

        class Listener:
            def on_cells_changed(self, changed):
                seen.extend(tuple(map(int, c)) for c in changed)

            def on_grid_reset(self):
                pass

        grid.add_change_listener(Listener())
        with pytest.raises(GridError, match="already owned by net 9"):
            grid.occupy_many([(0, 1, 1), (0, 2, 2), (0, 3, 3)], 5)
        # Cells before the conflict were written and reported, exactly
        # like the scalar loop.
        assert grid.owner(0, Point(1, 1)) == 5
        assert grid.owner(0, Point(2, 2)) == 5
        assert grid.owner(0, Point(3, 3)) == 9
        assert seen == [(0, 1, 1), (0, 2, 2)]

    def test_duplicate_cells_notify_once(self):
        grid = RoutingGrid(8, 8)
        batch = [(0, 1, 1)] * 3 + [(1, 2, 2)]
        grid.occupy_many(batch, 4)
        assert grid.owner(0, Point(1, 1)) == 4
        assert grid.owner(1, Point(2, 2)) == 4
        big = [(0, x, y) for x in range(8) for y in range(8)]
        grid2 = RoutingGrid(8, 8)
        grid2.occupy_many(big + big, 4)  # >=48 cells: numpy path
        assert all(
            grid2.owner(0, Point(x, y)) == 4
            for x in range(8)
            for y in range(8)
        )
        assert grid2._occ[1].max() == int(CellState.FREE)

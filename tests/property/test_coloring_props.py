"""Property-based tests on parity union-find and color flipping."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color import Color
from repro.core import (
    ConstraintEdge,
    OverlayConstraintGraph,
    ParityUnionFind,
    ScenarioType,
)
from repro.core.color_flip import brute_force_coloring, flip_colors
from repro.errors import ColoringError

NODES = list(range(8))

parity_edges = st.lists(
    st.tuples(
        st.sampled_from(NODES), st.sampled_from(NODES), st.integers(0, 1)
    ).filter(lambda e: e[0] != e[1]),
    max_size=16,
)


class TestParityUnionFindVsNetworkx:
    @settings(max_examples=100)
    @given(parity_edges)
    def test_matches_bipartiteness_oracle(self, edges):
        """Union-find accepts the edge set iff the 'different' relation
        graph (with same-edges contracted) is bipartite."""
        uf = ParityUnionFind()
        accepted = all(uf.union(u, v, p) for u, v, p in edges)

        # Oracle: expand each parity-0 edge into two parity-1 edges via a
        # dummy vertex, then check bipartiteness with networkx.
        g = nx.Graph()
        g.add_nodes_from(NODES)
        for i, (u, v, p) in enumerate(edges):
            if p == 1:
                g.add_edge(u, v)
            else:
                dummy = f"d{i}"
                g.add_edge(u, dummy)
                g.add_edge(dummy, v)
        assert accepted == nx.is_bipartite(g)

    @settings(max_examples=60)
    @given(parity_edges)
    def test_relations_transitively_consistent(self, edges):
        uf = ParityUnionFind()
        kept = []
        for u, v, p in edges:
            if uf.union(u, v, p):
                kept.append((u, v, p))
        for u, v, p in kept:
            assert uf.relation(u, v) == p


soft_types = st.sampled_from(
    [
        ScenarioType.T2A,
        ScenarioType.T2B,
        ScenarioType.T3A,
        ScenarioType.T3B,
        ScenarioType.T3C,
        ScenarioType.T3D,
    ]
)
hard_types = st.sampled_from([ScenarioType.T1A, ScenarioType.T1B])
any_types = st.one_of(soft_types, hard_types)

graph_edges = st.lists(
    st.tuples(
        st.sampled_from(NODES), st.sampled_from(NODES), any_types,
        st.booleans(), st.integers(1, 4),
    ).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=10,
)


def dp_total(graph, coloring):
    return sum(
        e.dp_cost(coloring.get(e.u, Color.CORE), coloring.get(e.v, Color.CORE))
        for e in graph.edges
    )


class TestFlipColorsProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph_edges)
    def test_flip_matches_bruteforce_or_raises(self, edges):
        """On every random graph, flip_colors either raises (hard odd
        cycle) in exact agreement with the union-find, or returns an
        assignment that (a) satisfies every hard edge and (b) on graphs
        whose soft structure is a forest, reaches the brute-force optimum.
        """
        g = OverlayConstraintGraph()
        offenders = g.add_edges(
            ConstraintEdge.from_scenario(u, v, t, tip, ov)
            for u, v, t, tip, ov in edges
        )
        if offenders:
            try:
                flip_colors(g)
                assert False, "expected ColoringError on hard odd cycle"
            except ColoringError:
                return
        colors = flip_colors(g)
        total = dp_total(g, colors)
        assert total < float("inf")  # no hard edge violated
        _, best = brute_force_coloring(g, sorted(g.vertices))
        # Never better than optimal; equal when the contracted soft
        # structure is a forest (Theorem 4). On cyclic structures the
        # refinement sweep may stop at a local optimum.
        assert total >= best
        if self._soft_structure_is_forest(g):
            assert total == best

    @staticmethod
    def _soft_structure_is_forest(graph) -> bool:
        uf = ParityUnionFind()
        for e in graph.edges:
            if e.kind.is_hard:
                uf.union(e.u, e.v, e.parity)
        nxg = nx.MultiGraph()
        for e in graph.edges:
            if e.kind.is_hard:
                continue
            ru, _ = uf.find(e.u)
            rv, _ = uf.find(e.v)
            if ru != rv:
                nxg.add_edge(ru, rv)
        if nxg.number_of_nodes() == 0:
            return True
        return nx.number_of_edges(nxg) == nxg.number_of_nodes() - len(
            list(nx.connected_components(nxg))
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_edges)
    def test_scope_subset_consistency(self, edges):
        g = OverlayConstraintGraph()
        if g.add_edges(
            ConstraintEdge.from_scenario(u, v, t, tip, ov)
            for u, v, t, tip, ov in edges
        ):
            return
        full = flip_colors(g)
        for vertex in sorted(g.vertices):
            scoped = flip_colors(g, scope={vertex})
            assert set(scoped) == g.component_of(vertex)
        assert set(full) == set(g.vertices)

"""Property tests: overlay cost grids vs the brute-force probe.

Three implementations of the Eq. (5) overlay term must agree bit-exactly
on every cell:

* ``SadpRouter._overlay_probe`` — the per-cell brute force (the spec);
* ``overlay_cost_grid`` — the vectorised window computation;
* ``OverlayCostCache.grid_for`` — the memoised variant, after arbitrary
  sequences of occupancy changes and incremental repairs.
"""

import random

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.grid import RoutingGrid, default_layer_stack
from repro.netlist import Netlist
from repro.router import SadpRouter
from repro.router.overlay_cache import OverlayCostCache, overlay_cost_grid


def _random_grid(rng: random.Random, side: int = 20, fill: float = 0.15):
    grid = RoutingGrid(side, side, layers=default_layer_stack(3))
    for layer in range(grid.num_layers):
        for x in range(side):
            for y in range(side):
                if rng.random() < fill:
                    grid.occupy(layer, Point(x, y), rng.randrange(0, 12))
    return grid


def _probe_router(grid) -> SadpRouter:
    return SadpRouter(grid, Netlist())


def _random_bounds(rng: random.Random, grid):
    xlo = rng.randrange(0, grid.width - 4)
    ylo = rng.randrange(0, grid.height - 4)
    xhi = rng.randrange(xlo, grid.width)
    yhi = rng.randrange(ylo, grid.height)
    return (xlo, xhi, ylo, yhi)


def _horizontal(grid):
    return [
        grid.layer_direction(l).name == "HORIZONTAL"
        for l in range(grid.num_layers)
    ]


@pytest.mark.parametrize("seed", range(6))
def test_vectorised_grid_matches_brute_force_probe(seed):
    rng = random.Random(seed)
    grid = _random_grid(rng)
    router = _probe_router(grid)
    own = rng.choice([-1, 0, 3, 7])
    router._active_net = own
    bounds = _random_bounds(rng, grid)
    params = router.params
    cost = overlay_cost_grid(
        grid._occ, _horizontal(grid), bounds, own, params.gamma, params.delta_tip
    )
    xlo, xhi, ylo, yhi = bounds
    for layer in range(grid.num_layers):
        for x in range(xlo, xhi + 1):
            for y in range(ylo, yhi + 1):
                expected = router._overlay_probe(layer, Point(x, y))
                assert cost[layer, x - xlo, y - ylo] == expected, (
                    f"cell ({layer},{x},{y}) own={own}: "
                    f"{cost[layer, x - xlo, y - ylo]} != probe {expected}"
                )


@pytest.mark.parametrize("seed", range(8))
def test_cached_grid_matches_fresh_after_arbitrary_invalidations(seed):
    """Random interleavings of occupy/release/release_net and lookups for
    several nets/windows: every served grid must equal a from-scratch
    recomputation bit-for-bit."""
    rng = random.Random(100 + seed)
    grid = _random_grid(rng, fill=0.12)
    params_gamma, params_delta = 1.5, 0.5
    cache = OverlayCostCache(grid, params_gamma, params_delta, max_entries=4)
    horizontal = _horizontal(grid)

    def check(own, bounds):
        served = cache.grid_for(own, bounds)
        fresh = overlay_cost_grid(
            grid._occ, horizontal, bounds, own, params_gamma, params_delta
        )
        assert np.array_equal(served, fresh), (
            f"own={own} bounds={bounds}: cached grid diverged from fresh"
        )

    nets = [0, 3, 7, 11]
    windows = {net: _random_bounds(rng, grid) for net in nets}
    for _ in range(60):
        op = rng.random()
        if op < 0.35:  # occupy a free cell
            layer = rng.randrange(grid.num_layers)
            p = Point(rng.randrange(grid.width), rng.randrange(grid.height))
            if grid.is_free(layer, p):
                grid.occupy(layer, p, rng.choice(nets))
        elif op < 0.50:  # release one cell
            layer = rng.randrange(grid.num_layers)
            p = Point(rng.randrange(grid.width), rng.randrange(grid.height))
            owner = grid.owner(layer, p)
            if owner >= 0:
                grid.release(layer, p, owner)
        elif op < 0.58:  # rip a whole net out
            grid.release_net(rng.choice(nets))
        else:  # lookup (often a repeat -> cache hit + repair path)
            net = rng.choice(nets)
            if rng.random() < 0.3:
                windows[net] = _random_bounds(rng, grid)
            check(net, windows[net])
    assert cache.hits > 0, "interleaving never exercised the repair/hit path"
    assert cache.repaired_cells > 0


def test_contained_window_is_served_by_slicing():
    rng = random.Random(42)
    grid = _random_grid(rng)
    cache = OverlayCostCache(grid, 1.5, 0.5)
    big = (2, 15, 3, 16)
    cache.grid_for(5, big)
    assert cache.misses == 1
    small = (4, 10, 5, 12)
    served = cache.grid_for(5, small)
    assert cache.hits == 1
    fresh = overlay_cost_grid(grid._occ, _horizontal(grid), small, 5, 1.5, 0.5)
    assert np.array_equal(served, fresh)


def test_block_resets_the_cache():
    grid = RoutingGrid(16, 16)
    cache = OverlayCostCache(grid, 1.5, 0.5)
    cache.grid_for(1, (0, 10, 0, 10))
    grid.block(0, Rect(3, 3, 6, 6))
    assert cache._entries == {}  # bulk rewrite -> everything stale
    served = cache.grid_for(1, (0, 10, 0, 10))
    fresh = overlay_cost_grid(
        grid._occ, _horizontal(grid), (0, 10, 0, 10), 1, 1.5, 0.5
    )
    assert np.array_equal(served, fresh)


def test_lru_bound_holds():
    grid = RoutingGrid(16, 16)
    cache = OverlayCostCache(grid, 1.5, 0.5, max_entries=2)
    for net in range(5):
        cache.grid_for(net, (0, 8, 0, 8))
    assert len(cache._entries) == 2
    assert set(cache._entries) == {3, 4}  # most recently used survive

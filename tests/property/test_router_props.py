"""Property-based fuzzing of the full routing flow.

Random small netlists, one invariant set: the router never crashes, never
commits a hard overlay or a cut conflict, colors every routed net on the
layers it uses, and keeps the grid ownership consistent with the routes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.color import Color
from repro.geometry import Point
from repro.grid import CellState, RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter

SIZE = 22


@st.composite
def netlists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    used = set()
    nets = []
    for i in range(count):
        pins = []
        for _ in range(2):
            for _ in range(200):
                p = Point(
                    draw(st.integers(0, SIZE - 1)), draw(st.integers(0, SIZE - 1))
                )
                if p not in used:
                    used.add(p)
                    pins.append(p)
                    break
            else:
                break
        if len(pins) < 2 or pins[0] == pins[1]:
            continue
        nets.append(Net(i, f"n{i}", Pin(candidates=(pins[0],)), Pin(candidates=(pins[1],))))
    if not nets:
        nets = [Net(0, "n0", Pin.at(0, 0), Pin.at(5, 0))]
    return Netlist(nets)


class TestRouterInvariants:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(netlists())
    def test_invariants_hold(self, nets):
        grid = RoutingGrid(SIZE, SIZE)
        router = SadpRouter(grid, nets)
        result = router.route_all()

        # 1. Guarantees.
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0

        # 2. Every routed net's segments are grid-consistent.
        for net_id, route in result.routes.items():
            if not route.success:
                continue
            for seg in route.segments:
                for p in seg.points():
                    assert grid.owner(seg.layer, p) == net_id

        # 3. Routed nets are colored on every layer they occupy.
        for net_id, route in result.routes.items():
            if not route.success:
                continue
            for layer in {seg.layer for seg in route.segments}:
                vertices = router.graphs[layer].vertices
                if net_id in vertices:
                    assert net_id in result.colorings[layer]

        # 4. Hard edges satisfied by the committed coloring.
        for layer, graph in enumerate(router.graphs):
            evaluation = graph.evaluate(router.colorings[layer])
            assert evaluation.hard_violations == 0

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(netlists())
    def test_merge_ablation_never_conflicts(self, nets):
        grid = RoutingGrid(SIZE, SIZE)
        result = SadpRouter(grid, nets, enable_merge=False).route_all()
        assert result.cut_conflicts == 0
        assert result.hard_overlays == 0

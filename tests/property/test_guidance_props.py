"""Property tests (hypothesis): future-cost guidance maps.

The corridor-pruning proof in :mod:`repro.router.guidance` rests on two
facts about the map ``d``:

* **exactness** — ``d(n)`` is the true cheapest cost-to-go from ``n`` to
  any target under the forward search's edge weights (``step`` plus the
  folded cost of every cell *entered*), hence admissible;
* **consistency** — ``d(u) <= w(u, v) + d(v)`` for every legal move,
  which makes the pruned class closed under relaxation.

Both are pinned here against a scalar reference Dijkstra over the same
window graph, for both backends (``csgraph`` and the pure-numpy
``sweep``), across randomized shapes, blockage masks, cost grids,
direction assignments, and wrong-way settings.
"""

import heapq
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.router.guidance import (
    HAVE_SCIPY,
    PRUNE_EPS,
    future_cost_map,
    prune_threshold,
)

INF = float("inf")


# ---------------------------------------------------------------------- #
# scalar reference: backward multi-source Dijkstra over the window graph
# ---------------------------------------------------------------------- #


def _moves(num_layers, wx, wy, horizontal, alpha, beta, wrong_way):
    """Yield every legal forward move ``(u, v, step)`` of the window."""
    for layer in range(num_layers):
        pref_x = horizontal[layer]
        ww = alpha * wrong_way
        for x in range(wx):
            for y in range(wy):
                u = (layer, x, y)
                if x + 1 < wx:
                    step = alpha if pref_x else ww
                    if pref_x or wrong_way:
                        yield u, (layer, x + 1, y), step
                        yield (layer, x + 1, y), u, step
                if y + 1 < wy:
                    step = ww if pref_x else alpha
                    if (not pref_x) or wrong_way:
                        yield u, (layer, x, y + 1), step
                        yield (layer, x, y + 1), u, step
                if layer + 1 < num_layers:
                    yield u, (layer + 1, x, y), beta
                    yield (layer + 1, x, y), u, beta


def _reference_map(passable, cost, horizontal, alpha, beta, wrong_way, targets):
    """Cost-to-go by textbook Dijkstra on the reversed window graph.

    Edge ``u -> v`` costs ``step + cost[v]`` (the forward search pays the
    folded cost of every cell it enters); the distance of impassable
    cells is ``inf`` by definition.
    """
    num_layers, wx, wy = passable.shape
    adj = {}  # v -> [(u, w(u, v))]: forward predecessors
    for u, v, step in _moves(
        num_layers, wx, wy, horizontal, alpha, beta, wrong_way
    ):
        if passable[v]:
            adj.setdefault(v, []).append((u, step + cost[v]))
    dist = np.full(passable.shape, INF)
    heap = []
    for t in zip(*np.nonzero(targets)):
        dist[t] = 0.0
        heap.append((0.0, t))
    heapq.heapify(heap)
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in adj.get(v, ()):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    dist[~passable] = INF
    return dist


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #


@st.composite
def windows(draw):
    num_layers = draw(st.integers(min_value=1, max_value=3))
    wx = draw(st.integers(min_value=2, max_value=7))
    wy = draw(st.integers(min_value=2, max_value=7))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    passable = rng.random((num_layers, wx, wy)) > 0.25
    cost = np.where(
        rng.random((num_layers, wx, wy)) < 0.4,
        0.0,
        np.round(rng.random((num_layers, wx, wy)) * 5.0, 3),
    )
    free = np.argwhere(passable)
    targets = np.zeros(passable.shape, dtype=bool)
    if len(free):
        n_targets = draw(st.integers(min_value=1, max_value=min(3, len(free))))
        for row in free[rng.choice(len(free), size=n_targets, replace=False)]:
            targets[tuple(row)] = True
    horizontal = tuple(draw(st.booleans()) for _ in range(num_layers))
    alpha = draw(st.sampled_from([1.0, 1.5]))
    beta = draw(st.sampled_from([2.0, 4.0]))
    wrong_way = draw(st.sampled_from([0.0, 2.0]))
    return passable, cost, horizontal, alpha, beta, wrong_way, targets


BACKENDS = ["sweep"] + (["csgraph"] if HAVE_SCIPY else [])


# ---------------------------------------------------------------------- #
# exactness (=> admissibility) against the scalar reference
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@given(windows())
@settings(max_examples=60, deadline=None)
def test_map_equals_reference_dijkstra(backend, window):
    passable, cost, horizontal, alpha, beta, wrong_way, targets = window
    d = future_cost_map(
        passable, cost, horizontal, alpha, beta, wrong_way, targets,
        backend=backend,
    )
    if not targets.any():
        assert d is None
        return
    assert d is not None
    ref = _reference_map(
        passable, cost, horizontal, alpha, beta, wrong_way, targets
    )
    assert np.allclose(d, ref, rtol=1e-12, atol=1e-12, equal_nan=False), (
        f"{backend} map diverged from reference Dijkstra"
    )
    # inf exactly where the reference is inf (unreachable / impassable)
    assert np.array_equal(np.isinf(d), np.isinf(ref))


@given(windows())
@settings(max_examples=40, deadline=None)
def test_backends_agree(window):
    if not HAVE_SCIPY:
        pytest.skip("csgraph backend requires scipy")
    passable, cost, horizontal, alpha, beta, wrong_way, targets = window
    a = future_cost_map(
        passable, cost, horizontal, alpha, beta, wrong_way, targets,
        backend="csgraph",
    )
    b = future_cost_map(
        passable, cost, horizontal, alpha, beta, wrong_way, targets,
        backend="sweep",
    )
    if a is None or b is None:
        assert a is None and b is None
        return
    assert np.allclose(a, b, rtol=1e-12, atol=1e-12)
    assert np.array_equal(np.isinf(a), np.isinf(b))


# ---------------------------------------------------------------------- #
# consistency: the property the pruning-closure proof actually uses
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@given(windows())
@settings(max_examples=40, deadline=None)
def test_map_is_consistent(backend, window):
    passable, cost, horizontal, alpha, beta, wrong_way, targets = window
    d = future_cost_map(
        passable, cost, horizontal, alpha, beta, wrong_way, targets,
        backend=backend,
    )
    if d is None:
        return
    num_layers, wx, wy = passable.shape
    for u, v, step in _moves(
        num_layers, wx, wy, horizontal, alpha, beta, wrong_way
    ):
        if not (passable[u] and passable[v]):
            continue
        w = step + cost[v]
        if math.isinf(d[v]):
            continue
        assert d[u] <= w + d[v] + 1e-9, (
            f"consistency violated at {u} -> {v}: "
            f"d(u)={d[u]} > {w} + d(v)={d[v]}"
        )
    # targets sit at the bottom: zero cost-to-go
    assert (d[targets] == 0.0).all()


# ---------------------------------------------------------------------- #
# degenerate windows and the corridor bound itself
# ---------------------------------------------------------------------- #


def test_degenerate_windows_return_none():
    passable = np.ones((2, 1, 5), dtype=bool)
    targets = np.zeros_like(passable)
    targets[0, 0, 0] = True
    cost = np.zeros(passable.shape)
    assert (
        future_cost_map(passable, cost, (True, False), 1.0, 4.0, 0.0, targets)
        is None
    )
    passable = np.ones((2, 5, 5), dtype=bool)
    no_targets = np.zeros_like(passable)
    assert (
        future_cost_map(
            passable, np.zeros(passable.shape), (True, False), 1.0, 4.0, 0.0,
            no_targets,
        )
        is None
    )


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_prune_threshold_pads_upward(total):
    thr = prune_threshold(total)
    assert thr > total
    assert thr - total >= PRUNE_EPS
    # the pad stays tiny relative to any genuine cost difference
    # float cancellation in (thr - total) can add up to ~ulp(total)
    assert thr - total <= 2 * (PRUNE_EPS + 1e-9 * total)

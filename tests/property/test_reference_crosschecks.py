"""Cross-checks of the optimised algorithms against reference oracles."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstraintEdge,
    OverlayConstraintGraph,
    ScenarioDetector,
    ScenarioType,
)
from repro.core.reference import (
    reference_dependent_pairs,
    reference_hard_feasible,
)
from repro.geometry import Point, Segment

coord = st.integers(min_value=0, max_value=30)
run = st.integers(min_value=0, max_value=8)


@st.composite
def seg(draw):
    x, y = draw(coord), draw(coord)
    r = draw(run)
    if draw(st.booleans()):
        return Segment(0, Point(x, y), Point(x + r, y))
    return Segment(0, Point(x, y), Point(x, y + r))


class TestDetectorVsBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(seg(), min_size=2, max_size=6, unique_by=lambda s: (s.a, s.b)))
    def test_incremental_matches_quadratic(self, segs):
        nets = {i: [s] for i, s in enumerate(segs)}
        oracle = Counter(reference_dependent_pairs(nets))

        det = ScenarioDetector(num_layers=1)
        mine = Counter()
        for net_id, net_segs in nets.items():
            for sc in det.add_net(net_id, net_segs):
                lo, hi = min(sc.net_a, sc.net_b), max(sc.net_a, sc.net_b)
                mine[(lo, hi, sc.scenario)] += 1
        assert mine == oracle


NODES = list(range(7))
hard_types = st.sampled_from([ScenarioType.T1A, ScenarioType.T1B])
hard_edges = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES), hard_types).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=12,
)


class TestHardFeasibilityVsNetworkx:
    @settings(max_examples=80, deadline=None)
    @given(hard_edges)
    def test_incremental_union_find_matches_bipartiteness(self, raw):
        edges = [ConstraintEdge.from_scenario(u, v, t) for u, v, t in raw]
        graph = OverlayConstraintGraph()
        offenders = graph.add_edges(edges)
        assert (not offenders) == reference_hard_feasible(edges)

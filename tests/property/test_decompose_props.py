"""Property-based tests on the bitmap decomposition invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.color import Color
from repro.decompose import TargetPattern, synthesize_masks, verify_decomposition
from repro.geometry import Rect
from repro.rules import DesignRules

RULES = DesignRules()
PITCH = RULES.pitch
HALF = RULES.w_line // 2

track = st.integers(min_value=0, max_value=10)
span = st.integers(min_value=1, max_value=8)
color = st.sampled_from([Color.CORE, Color.SECOND])


@st.composite
def wire_layouts(draw):
    """1-3 horizontal wires on distinct tracks (always manufacturable-ish)."""
    count = draw(st.integers(1, 3))
    tracks = draw(
        st.lists(track, min_size=count, max_size=count, unique=True)
    )
    wires = []
    for i, yt in enumerate(tracks):
        x0 = draw(st.integers(0, 4))
        run = draw(span)
        rect = Rect(
            x0 * PITCH - HALF,
            yt * PITCH - HALF,
            (x0 + run) * PITCH + HALF,
            yt * PITCH + HALF,
        )
        wires.append(TargetPattern.wire(i, rect, draw(color)))
    return wires


class TestMaskInvariants:
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(wire_layouts())
    def test_mask_set_is_consistent(self, wires):
        masks = synthesize_masks(wires, RULES)
        # Spacer never overlaps core material (it wraps it).
        assert not (masks.spacer & masks.core_mask).any
        # The cut mask never covers target features.
        assert not (masks.cut_mask & masks.target_bmp).any
        # Whatever prints is disjoint from spacer and cut by construction.
        assert not (masks.printed & masks.spacer).any
        assert not (masks.printed & masks.cut_mask).any
        # Assist material is always inside the core mask (possibly merged),
        # minus the parts clipped against second-target clearance.
        assert not (masks.assist - masks.core_mask).any

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(wire_layouts())
    def test_core_targets_always_print(self, wires):
        masks = synthesize_masks(wires, RULES)
        core_missing = (masks.core_targets - masks.printed).count()
        assert core_missing == 0

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(wire_layouts())
    def test_verifier_never_crashes_and_reports_sanely(self, wires):
        report = verify_decomposition(synthesize_masks(wires, RULES))
        assert report.missing_target_px >= 0
        assert report.overlay.side_overlay_nm >= 0
        assert report.overlay.tip_overlay_nm >= 0
        # Hard overlays only exist where side overlay exists.
        if report.overlay.hard_overlay_count:
            assert report.overlay.side_overlay_nm > RULES.w_line

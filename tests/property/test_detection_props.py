"""Property-based tests on scenario detection and relations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScenarioDetector, classify_relation, scenario_for_relation
from repro.core.scenarios import SCENARIO_RULES
from repro.geometry import Point, Rect, Segment

coord = st.integers(min_value=0, max_value=40)
length = st.integers(min_value=0, max_value=12)
offset = st.integers(min_value=-30, max_value=30)


@st.composite
def hsegments(draw):
    x = draw(coord)
    y = draw(coord)
    run = draw(length)
    return Segment(0, Point(x, y), Point(x + run, y))


@st.composite
def segments(draw):
    x = draw(coord)
    y = draw(coord)
    run = draw(length)
    if draw(st.booleans()):
        return Segment(0, Point(x, y), Point(x + run, y))
    return Segment(0, Point(x, y), Point(x, y + run))


class TestRelationProperties:
    @settings(max_examples=120)
    @given(segments(), segments())
    def test_scenario_agreement_under_swap(self, a, b):
        """Swapping the pair changes orientation bookkeeping, never the
        scenario type."""
        rel_ab = classify_relation(a.to_rect(), a.horizontal, b.to_rect(), b.horizontal)
        rel_ba = classify_relation(b.to_rect(), b.horizontal, a.to_rect(), a.horizontal)
        assert (rel_ab is None) == (rel_ba is None)
        if rel_ab is not None:
            assert scenario_for_relation(rel_ab) == scenario_for_relation(rel_ba)

    @settings(max_examples=120)
    @given(segments(), segments(), offset, offset)
    def test_translation_invariance(self, a, b, dx, dy):
        ta = Segment(a.layer, a.a.translated(dx, dy), a.b.translated(dx, dy))
        tb = Segment(b.layer, b.a.translated(dx, dy), b.b.translated(dx, dy))
        rel = classify_relation(a.to_rect(), a.horizontal, b.to_rect(), b.horizontal)
        trel = classify_relation(ta.to_rect(), ta.horizontal, tb.to_rect(), tb.horizontal)
        assert (rel is None) == (trel is None)
        if rel is not None:
            assert (rel.along, rel.across, rel.direction) == (
                trel.along,
                trel.across,
                trel.direction,
            )

    @settings(max_examples=120)
    @given(segments(), segments())
    def test_dependent_relations_map_to_scenarios(self, a, b):
        """Every dependent relation falls into the 11-scenario taxonomy
        (the completeness claim of Theorem 2)."""
        rel = classify_relation(a.to_rect(), a.horizontal, b.to_rect(), b.horizontal)
        if rel is not None:
            stype = scenario_for_relation(rel)
            assert stype is not None
            assert stype in SCENARIO_RULES


class TestDetectorProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(hsegments(), min_size=2, max_size=6, unique_by=lambda s: (s.a, s.b)))
    def test_detection_is_order_independent_as_a_set(self, segs):
        """The multiset of (pair, scenario) instances does not depend on
        the order nets are added in."""

        def run(order):
            det = ScenarioDetector(num_layers=1)
            found = []
            for i in order:
                for sc in det.add_net(i, [segs[i]]):
                    key = (frozenset((sc.net_a, sc.net_b)), sc.scenario)
                    found.append(key)
            return sorted(found, key=repr)

        forward = run(range(len(segs)))
        backward = run(range(len(segs) - 1, -1, -1))
        assert forward == backward

    @settings(max_examples=60, deadline=None)
    @given(st.lists(hsegments(), min_size=1, max_size=5, unique_by=lambda s: (s.a, s.b)))
    def test_add_remove_is_identity(self, segs):
        det = ScenarioDetector(num_layers=1)
        for i, seg in enumerate(segs):
            det.add_net(i, [seg])
        baseline = det.probe_segments(99, [Segment(0, Point(0, 20), Point(5, 20))])
        det.add_net(50, [Segment(0, Point(10, 25), Point(15, 25))])
        det.remove_net(50)
        after = det.probe_segments(99, [Segment(0, Point(0, 20), Point(5, 20))])
        assert len(baseline) == len(after)

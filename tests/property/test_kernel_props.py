"""Property tests (hypothesis): compiled-kernel bit-identity.

The kernel's contract is not "close enough" — it is *the same search*:
identical node sequences, FP-bit-exact costs, identical expansion /
push / pop counters and identical failure outcomes, for every window
shape, occupancy pattern, penalty map, cost-parameter choice and
expansion budget. Hypothesis drives randomized instances through both
engines (``kernel="python"`` vs ``kernel="numba"``) and compares
everything observable. With numba absent the kernel runs interpreted —
the contract is the same either way, so this file never skips.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.router import AStarRouter, CostParams, SearchRequest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@st.composite
def instances(draw):
    """A routing grid with random occupancy plus one search request."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    width = draw(st.integers(min_value=8, max_value=24))
    height = draw(st.integers(min_value=8, max_value=24))
    grid = RoutingGrid(width, height)
    fill = draw(st.sampled_from([0.0, 0.08, 0.2]))
    if fill:
        for layer in range(grid.num_layers):
            for x in range(width):
                for y in range(height):
                    if rng.random() < fill:
                        grid.occupy(layer, Point(x, y), rng.randrange(1, 9))
    penalties = {}
    if draw(st.booleans()):
        penalties = {
            (
                rng.randrange(grid.num_layers),
                rng.randrange(width),
                rng.randrange(height),
            ): round(rng.uniform(0.5, 8.0), 3)
            for _ in range(draw(st.integers(min_value=1, max_value=25)))
        }
    params = CostParams(
        alpha=draw(st.sampled_from([1.0, 1.5])),
        beta=draw(st.sampled_from([1.0, 2.0, 4.0])),
        wrong_way_factor=draw(st.sampled_from([0.0, 2.0, 3.5])),
    )
    n_pins = draw(st.integers(min_value=1, max_value=3))
    sources = [
        (rng.randrange(grid.num_layers), Point(rng.randrange(width), rng.randrange(height)))
        for _ in range(n_pins)
    ]
    targets = [
        (rng.randrange(grid.num_layers), Point(rng.randrange(width), rng.randrange(height)))
        for _ in range(n_pins)
    ]
    margin = draw(st.integers(min_value=0, max_value=4))
    return grid, params, penalties, sources, targets, margin


def _engines(grid, params, penalties):
    kwargs = dict(
        penalty_map=penalties or None,
        overlay_terms=(params.gamma, params.delta_tip),
    )
    py = AStarRouter(grid, params, kernel="python", **kwargs)
    kn = AStarRouter(grid, params, kernel="numba", **kwargs)
    py.active_net = kn.active_net = 7
    return py, kn


def _assert_identical(py, kn, req, margin):
    found_py = py.search(req, extra_margin=margin)
    found_kn = kn.search(req, extra_margin=margin)
    if found_py is None:
        assert found_kn is None
    else:
        assert found_kn is not None
        assert found_kn.nodes == found_py.nodes
        assert found_kn.cost == found_py.cost  # FP-bit-exact
        assert found_kn.expansions == found_py.expansions
    assert kn._last_stats == py._last_stats
    assert kn.last_outcome == py.last_outcome
    return found_py


@given(instances())
@settings(max_examples=50, deadline=None)
def test_search_is_bit_identical(instance):
    grid, params, penalties, sources, targets, margin = instance
    py, kn = _engines(grid, params, penalties)
    req = SearchRequest(net_id=7, sources=sources, targets=targets)
    _assert_identical(py, kn, req, margin)


@given(instances(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_budget_boundaries_are_bit_identical(instance, offset):
    """Budgets pinned to the unbudgeted expansion count +/- a few: the
    kernel must fail (or succeed) on exactly the same boundary, with the
    same counters and outcome."""
    grid, params, penalties, sources, targets, margin = instance
    py, kn = _engines(grid, params, penalties)
    probe = SearchRequest(net_id=7, sources=sources, targets=targets)
    found = py.search(probe, extra_margin=margin)
    expansions = found.expansions if found is not None else py._last_stats[0]
    for budget in {max(1, expansions - offset), expansions + offset}:
        if budget <= 0:
            continue
        req = SearchRequest(net_id=7, sources=sources, targets=targets)
        req.max_expansions = budget
        _assert_identical(py, kn, req, margin)


@given(instances(), st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_guidance_trigger_is_bit_identical(instance, trigger):
    """A mid-search guidance activation (suspend, build map, resume,
    prune) at an arbitrary trigger point changes nothing observable."""
    grid, params, penalties, sources, targets, margin = instance
    py, kn = _engines(grid, params, penalties)
    for engine in (py, kn):
        engine.guidance = "auto"
        engine.guidance_trigger = trigger
        engine.guidance_min_cells = 0
    req = SearchRequest(net_id=7, sources=sources, targets=targets)
    _assert_identical(py, kn, req, margin)
    assert kn.total_guided_searches == py.total_guided_searches
    assert kn.total_guidance_builds == py.total_guidance_builds

"""Property-based tests (hypothesis) on the geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Interval, IntervalSet, Point, Rect, decompose_rectilinear

coords = st.integers(min_value=-200, max_value=200)


@st.composite
def rects(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(min_value=1, max_value=50))
    h = draw(st.integers(min_value=1, max_value=50))
    return Rect(x0, y0, x0 + w, y0 + h)


@st.composite
def intervals(draw):
    lo = draw(coords)
    length = draw(st.integers(min_value=1, max_value=100))
    return Interval(lo, lo + length)


class TestPointProperties:
    @given(coords, coords, coords, coords)
    def test_manhattan_triangle_inequality(self, ax, ay, bx, by):
        a, b, origin = Point(ax, ay), Point(bx, by), Point(0, 0)
        assert a.manhattan(b) <= a.manhattan(origin) + origin.manhattan(b)

    @given(coords, coords, coords, coords)
    def test_chebyshev_below_manhattan(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.chebyshev(b) <= a.manhattan(b) <= 2 * a.chebyshev(b)


class TestRectProperties:
    @given(rects(), rects())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.gap_x(b) == b.gap_x(a)
        assert a.euclidean_gap_sq(b) == b.euclidean_gap_sq(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        ix = a.intersection(b)
        if ix is not None:
            assert a.contains_rect(ix)
            assert b.contains_rect(ix)

    @given(rects(), rects())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_rect(a)
        assert hull.contains_rect(b)

    @given(rects(), rects())
    def test_subtract_partitions_area(self, a, b):
        pieces = a.subtract(b)
        ix = a.intersection(b)
        covered = sum(p.area for p in pieces) + (ix.area if ix else 0)
        assert covered == a.area
        for piece in pieces:
            assert a.contains_rect(piece)
            if ix is not None:
                assert not piece.overlaps(ix)

    @given(rects(), st.integers(min_value=0, max_value=20))
    def test_inflate_monotone(self, r, amount):
        assert r.inflated(amount).contains_rect(r)


class TestIntervalSetProperties:
    @given(st.lists(intervals(), max_size=8), st.lists(intervals(), max_size=8))
    def test_subtract_then_intersect_empty(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        diff = a.subtract(b)
        assert not diff.intersection(b)

    @given(st.lists(intervals(), max_size=8), st.lists(intervals(), max_size=8))
    def test_union_length_bounds(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        u = a.union(b)
        assert u.total_length >= max(a.total_length, b.total_length)
        assert u.total_length <= a.total_length + b.total_length

    @given(st.lists(intervals(), max_size=8), st.lists(intervals(), max_size=8))
    def test_inclusion_exclusion(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        union = a.union(b).total_length
        inter = a.intersection(b).total_length
        assert union + inter == a.total_length + b.total_length

    @given(st.lists(intervals(), max_size=8))
    def test_normalisation_idempotent(self, xs):
        a = IntervalSet(xs)
        assert IntervalSet(list(a)) == a


class TestDecomposition:
    @settings(max_examples=50)
    @given(st.lists(rects(), min_size=1, max_size=6))
    def test_fragments_disjoint_and_area_preserving(self, shapes):
        frags = decompose_rectilinear(shapes)
        for i, a in enumerate(frags):
            for b in frags[i + 1 :]:
                assert not a.overlaps(b)
        # Area equals the area of the union (computed by pixel counting
        # on a coarse canvas would be expensive; instead compare against
        # an independent slab sweep on x).
        total = sum(f.area for f in frags)
        assert total <= sum(s.area for s in shapes)
        assert total >= max(s.area for s in shapes)

    @settings(max_examples=50)
    @given(st.lists(rects(), min_size=1, max_size=5))
    def test_canonical_under_permutation(self, shapes):
        a = decompose_rectilinear(shapes)
        b = decompose_rectilinear(list(reversed(shapes)))
        assert a == b

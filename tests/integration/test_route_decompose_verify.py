"""End-to-end: route a netlist, lower to nm, decompose, verify physically.

This is the strongest claim check in the suite: the router's committed
colorings, run through the independent bitmap SADP engine, must print the
layout with **no hard overlay and no cut conflict** (contribution 5 of the
paper), and the graph-side overlay accounting must be consistent with the
physically measured overlay.
"""

import random

import pytest

from repro.decompose import routing_to_targets, synthesize_masks, verify_decomposition
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter


def random_netlist(num_nets, size, seed):
    rng = random.Random(seed)
    used = set()
    nets = []
    for i in range(num_nets):
        while True:
            a = Point(rng.randrange(size), rng.randrange(size))
            if a not in used:
                used.add(a)
                break
        while True:
            b = Point(
                min(max(a.x + rng.randint(-10, 10), 0), size - 1),
                min(max(a.y + rng.randint(-10, 10), 0), size - 1),
            )
            if b != a and b not in used:
                used.add(b)
                break
        nets.append(Net(i, f"n{i}", Pin(candidates=(a,)), Pin(candidates=(b,))))
    return Netlist(nets)


@pytest.mark.parametrize("seed", [11, 22])
def test_routed_layers_decompose_cleanly(seed):
    """The committed layout must *manufacture* on every layer.

    The abstract guarantees (zero conflicts / zero hard overlays) hold
    with respect to the paper's scenario model; the stricter physical
    metrology may still find a handful of residual hard runs where hard
    constraints force a 2-a CS assignment (the paper prices those as two
    *soft* units; the bitmap shows the assist-merge cut is contiguous).
    See EXPERIMENTS.md, "model vs physics". We bound those residuals.
    """
    grid = RoutingGrid(28, 28)
    nets = random_netlist(20, 28, seed)
    router = SadpRouter(grid, nets)
    result = router.route_all()
    assert result.cut_conflicts == 0
    assert result.hard_overlays == 0

    routed = sum(1 for r in result.routes.values() if r.success)
    for layer in range(grid.num_layers):
        targets = routing_to_targets(grid, result, layer)
        if not targets:
            continue
        masks = synthesize_masks(targets, grid.rules)
        report = verify_decomposition(masks)
        assert report.prints_correctly, f"layer {layer}: target does not print"
        # Physical residuals must stay rare: a few per layer at most.
        assert report.overlay.hard_overlay_count <= max(routed // 5, 3), (
            f"layer {layer}: too many physical hard overlays"
        )
        assert len(report.cut_conflicts) <= routed, (
            f"layer {layer}: physical cut conflicts out of control"
        )


def test_graph_accounting_tracks_physical_overlay():
    """The graph-side overlay units and the bitmap measurement agree in
    order of magnitude on a routed clip (exact equality is not expected:
    the abstract model prices scenarios, the bitmap measures boundaries)."""
    grid = RoutingGrid(24, 24)
    nets = random_netlist(14, 24, seed=7)
    router = SadpRouter(grid, nets)
    result = router.route_all()

    physical_nm = 0
    for layer in range(grid.num_layers):
        targets = routing_to_targets(grid, result, layer)
        if targets:
            report = verify_decomposition(synthesize_masks(targets, grid.rules))
            physical_nm += report.overlay.side_overlay_nm
    # Consistency band: within 5x + one unit slack each way.
    assert physical_nm <= 5 * result.overlay_nm + 200
    # (The graph model may overcount 2-b floors the bitmap doesn't see,
    # so no tight lower bound is asserted.)


def test_unrouted_nets_do_not_appear_in_targets():
    grid = RoutingGrid(24, 24)
    nets = random_netlist(10, 24, seed=3)
    router = SadpRouter(grid, nets)
    result = router.route_all()
    routed_ids = {n for n, r in result.routes.items() if r.success}
    for layer in range(grid.num_layers):
        for pattern in routing_to_targets(grid, result, layer):
            assert pattern.net_id in routed_ids

"""Unit tests for bitmap cut-conflict detection and the verifier."""

import pytest

from repro.color import Color
from repro.decompose import (
    TargetPattern,
    find_cut_conflicts,
    synthesize_masks,
    verify_decomposition,
)
from repro.geometry import Rect


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


class TestCutConflicts:
    def test_clean_layout_no_conflicts(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        assert find_cut_conflicts(synthesize_masks(t, rules)) == []

    def test_flanked_core_type_b(self, rules):
        # A core wire with assist-merge cuts on both flanks: the classic
        # type B — two cuts d_cut-violating across a w_line wire.
        t = [
            hwire(0, 0, 400, 0, Color.CORE),
            hwire(1, 0, 400, 80, Color.SECOND),
            hwire(2, 0, 400, -80, Color.SECOND),
        ]
        conflicts = find_cut_conflicts(synthesize_masks(t, rules))
        assert any(c.kind == "min_distance" for c in conflicts)

    def test_conflict_reports_location(self, rules):
        t = [
            hwire(0, 0, 400, 0, Color.CORE),
            hwire(1, 0, 400, 80, Color.SECOND),
            hwire(2, 0, 400, -80, Color.SECOND),
        ]
        conflicts = find_cut_conflicts(synthesize_masks(t, rules))
        big = max(conflicts, key=lambda c: c.evidence_px)
        x, y = big.location_nm
        assert -20 <= y <= 20  # over the middle wire


class TestVerifier:
    def test_clean_decomposition_ok(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        report = verify_decomposition(synthesize_masks(t, rules))
        assert report.prints_correctly
        assert report.ok

    def test_hard_overlay_fails_ok(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        report = verify_decomposition(synthesize_masks(t, rules))
        assert report.overlay.hard_overlay_count > 0
        assert not report.ok

    def test_unmanufacturable_ss_reported(self, rules):
        # 1-a SS: spacer cannot form between the wires; printing breaks.
        t = [hwire(0, 0, 400, 0, Color.SECOND), hwire(1, 0, 400, 40, Color.SECOND)]
        report = verify_decomposition(synthesize_masks(t, rules))
        assert not report.ok

    def test_report_counts_px(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE)]
        report = verify_decomposition(synthesize_masks(t, rules))
        assert report.missing_target_px <= 2
        assert report.spacer_over_target_px <= 2

"""Unit tests for bitmap overlay metrology."""

import pytest

from repro.color import Color
from repro.decompose import TargetPattern, measure_overlays, synthesize_masks
from repro.geometry import Rect


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


def vwire(net, ylo, yhi, xc, color):
    return TargetPattern.wire(net, Rect(xc - 10, ylo, xc + 10, yhi), color)


class TestCleanCases:
    def test_isolated_core_wire_no_overlay(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.CORE)], rules)
        report = measure_overlays(masks)
        assert report.side_overlay_nm == 0
        assert report.hard_overlay_count == 0

    def test_isolated_second_wire_tips_only(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        report = measure_overlays(masks)
        assert report.side_overlay_nm == 0
        # Tips of a trench wire are cut-defined: tip overlay, non-critical.
        assert report.tip_overlay_nm > 0

    def test_1a_proper_coloring_clean(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        report = measure_overlays(synthesize_masks(t, rules))
        assert report.side_overlay_nm == 0
        assert report.hard_overlay_count == 0


class TestOverlayCases:
    def test_1a_cc_hard_overlay(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        report = measure_overlays(synthesize_masks(t, rules))
        # The merge bridge is cut along both facing flanks: long runs.
        assert report.side_overlay_nm >= 2 * 380
        assert report.hard_overlay_count >= 2

    def test_2a_mixed_coloring_overlays(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 80, Color.SECOND)]
        report = measure_overlays(synthesize_masks(t, rules))
        assert report.side_overlay_nm >= 300  # assist merge along the run

    def test_3a_cc_one_unit(self, rules):
        t = [hwire(0, 0, 390, 0, Color.CORE), hwire(1, 410, 800, 40, Color.CORE)]
        report = measure_overlays(synthesize_masks(t, rules))
        # Fig. 7(e): exactly one unit of side overlay (20 nm) at the corner.
        assert 0 < report.side_overlay_nm <= 2 * rules.w_line
        assert report.hard_overlay_count == 0

    def test_vertical_orientation_equivalent(self, rules):
        h = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        v = [vwire(0, 0, 400, 0, Color.CORE), vwire(1, 0, 400, 40, Color.CORE)]
        rh = measure_overlays(synthesize_masks(h, rules))
        rv = measure_overlays(synthesize_masks(v, rules))
        assert rh.side_overlay_nm == rv.side_overlay_nm


class TestReportStructure:
    def test_edges_carry_runs(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        report = measure_overlays(synthesize_masks(t, rules))
        side_edges = [e for e in report.edges if e.is_side]
        assert side_edges
        for edge in side_edges:
            assert edge.total_nm == sum(l for _, l in edge.runs_nm)
            assert edge.max_run_nm <= edge.total_nm

    def test_units_conversion(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 80, Color.SECOND)]
        report = measure_overlays(synthesize_masks(t, rules))
        assert report.side_overlay_units == pytest.approx(
            report.side_overlay_nm / rules.w_line
        )

"""Semantic checks of the paper's concept figures (Figs. 1, 2, 4).

These tests exercise the decomposition engine on the situations the
paper's introduction uses to motivate the cut process.
"""

import pytest

from repro.color import Color
from repro.decompose import (
    TargetPattern,
    measure_overlays,
    synthesize_masks,
    synthesize_trim_masks,
    verify_decomposition,
)
from repro.geometry import Rect


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


class TestFig1CutVsTrim:
    """Fig. 1: the same target decomposed with the cut and trim flows."""

    def _target(self):
        return [
            hwire(0, 0, 400, 0, Color.CORE),
            hwire(1, 0, 400, 40, Color.SECOND),
            hwire(2, 0, 400, 80, Color.CORE),
        ]

    def test_cut_process_manufactures_target(self, rules):
        report = verify_decomposition(synthesize_masks(self._target(), rules))
        assert report.prints_correctly

    def test_trim_process_manufactures_target(self, rules):
        ms = synthesize_trim_masks(self._target(), rules)
        missing = (ms.target_bmp - ms.printed).count()
        assert missing <= 2
        assert ms.conflict_count == 0


class TestFig2MergeTechnique:
    """Fig. 2: the cut process decomposes patterns trim cannot."""

    def test_tip_to_tip_merge_and_cut(self, rules):
        # Two collinear same-color wires 20 nm apart: the cut process
        # merges them and separates with a cut; no hard overlay.
        t = [hwire(0, 0, 190, 0, Color.CORE), hwire(1, 210, 400, 0, Color.CORE)]
        report = verify_decomposition(synthesize_masks(t, rules))
        assert report.prints_correctly
        assert report.overlay.hard_overlay_count == 0
        assert not report.cut_conflicts

    def test_same_pair_fails_under_trim(self, rules):
        t = [hwire(0, 0, 190, 0, Color.CORE), hwire(1, 210, 400, 0, Color.CORE)]
        ms = synthesize_trim_masks(t, rules)
        assert ms.core_spacing_conflicts  # trim cannot merge


class TestFig4AssistProtection:
    """Fig. 4: assist cores protect second patterns' flanks."""

    def test_assists_remove_side_overlay(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        report = measure_overlays(masks)
        assert report.side_overlay_nm == 0

    def test_without_assists_trim_overlays(self, rules):
        from repro.decompose.trim import measure_trim_overlays

        ms = synthesize_trim_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        assert measure_trim_overlays(ms).side_overlay_nm > 0

"""Unit tests for cut-process mask synthesis."""

import pytest

from repro.color import Color
from repro.decompose import TargetPattern, synthesize_masks
from repro.decompose.masks import default_window
from repro.errors import DecompositionError
from repro.geometry import Rect


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


class TestWindow:
    def test_default_window_contains_targets(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE)]
        window = default_window(t, rules)
        assert window.contains_rect(Rect(0, -10, 400, 10))
        assert window.width % 5 == 0

    def test_empty_targets_rejected(self, rules):
        with pytest.raises(DecompositionError):
            default_window([], rules)


class TestCorePatterns:
    def test_single_core_wire(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.CORE)], rules)
        # The wire is on the core mask and prints.
        assert masks.core_mask.sample(200, 0)
        assert masks.printed.sample(200, 0)
        # Spacer wraps it at w_spacer.
        assert masks.spacer.sample(200, 20)
        assert not masks.spacer.sample(200, 0)
        # No assist cores needed.
        assert not masks.assist.any

    def test_core_boundary_spacer_protected(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.CORE)], rules)
        # Just above the top boundary (y=10): spacer.
        assert masks.spacer.sample(200, 12)


class TestSecondPatterns:
    def test_single_second_wire_gets_assists(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        assert masks.assist.any
        # Assist strips at w_spacer above/below the wire.
        assert masks.assist.sample(200, 35)  # y in [30, 50)
        assert masks.assist.sample(200, -35)
        # The wire itself prints (trench between spacers).
        assert masks.printed.sample(200, 0)
        # Its flanks are spacer-protected.
        assert masks.spacer.sample(200, 15)

    def test_assists_clipped_near_other_second(self, rules):
        # Second wires on adjacent tracks (1-a SS): no room for the
        # shared assist -> clipped; spacer cannot protect between them.
        t = [hwire(0, 0, 400, 0, Color.SECOND), hwire(1, 0, 400, 40, Color.SECOND)]
        masks = synthesize_masks(t, rules)
        between = masks.assist.sample(200, 20)
        assert not between

    def test_assist_is_cut_away(self, rules):
        masks = synthesize_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        # Assist core material must not survive on the wafer.
        assert not (masks.printed & masks.assist).any


class TestMerging:
    def test_adjacent_cores_merge(self, rules):
        # 1-a CC: 20 nm gap < d_core -> merged core with a bridge.
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        masks = synthesize_masks(t, rules)
        assert masks.merged_bridges().any
        assert masks.core_mask.sample(200, 20)  # bridge material between

    def test_far_cores_do_not_merge(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 120, Color.CORE)]
        masks = synthesize_masks(t, rules)
        assert not masks.merged_bridges().any

    def test_diagonal_corner_merge(self, rules):
        # 3-a CC: corner gap 28.3 nm < d_core -> merge.
        t = [hwire(0, 0, 390, 0, Color.CORE), hwire(1, 410, 800, 40, Color.CORE)]
        masks = synthesize_masks(t, rules)
        assert masks.merged_bridges().any

    def test_merge_never_covers_second_target(self, rules):
        t = [
            hwire(0, 0, 400, 0, Color.CORE),
            hwire(1, 0, 400, 40, Color.SECOND),
            hwire(2, 0, 400, 80, Color.CORE),
        ]
        masks = synthesize_masks(t, rules)
        second = [r for p in masks.targets if p.color is Color.SECOND for r in p.rects]
        for rect in second:
            cx, cy = rect.center
            assert not masks.core_mask.sample(int(cx), int(cy))


class TestCutMask:
    def test_cut_never_over_target(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        masks = synthesize_masks(t, rules)
        assert not (masks.cut_mask & masks.target_bmp).any

    def test_printed_covers_targets(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 80, Color.SECOND)]
        masks = synthesize_masks(t, rules)
        missing = (masks.target_bmp - masks.printed).count()
        assert missing <= 2  # rasterisation noise only

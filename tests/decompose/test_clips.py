"""Unit tests for the canonical scenario clips."""

import pytest

from repro.color import ALL_PAIRS, ColorPair
from repro.core import ScenarioDetector, ScenarioType
from repro.decompose import scenario_clip
from repro.geometry import Point, Segment
from repro.rules import DesignRules


class TestClips:
    @pytest.mark.parametrize("stype", list(ScenarioType), ids=lambda s: s.value)
    def test_clip_exists_for_every_scenario(self, stype):
        clip = scenario_clip(stype, ColorPair.CC)
        assert len(clip) == 2
        assert clip[0].net_id == 0 and clip[1].net_id == 1

    @pytest.mark.parametrize("pair", ALL_PAIRS, ids=lambda p: p.name)
    def test_colors_follow_pair(self, pair):
        clip = scenario_clip(ScenarioType.T1A, pair)
        assert clip[0].color is pair.a
        assert clip[1].color is pair.b

    @pytest.mark.parametrize("stype", list(ScenarioType), ids=lambda s: s.value)
    def test_clip_geometry_detects_as_its_scenario(self, stype):
        """Each clip, re-expressed in track coordinates and run through
        the detector, must produce exactly its own scenario type."""
        rules = DesignRules()
        pitch, half = rules.pitch, rules.w_line // 2
        clip = scenario_clip(stype, ColorPair.CC, rules)
        det = ScenarioDetector(num_layers=1, include_trivial=True)
        for pattern in clip:
            rect = pattern.rects[0]
            if pattern.horizontal[0]:
                y = (rect.ylo + half) // pitch
                x0 = (rect.xlo + half) // pitch
                x1 = (rect.xhi - half) // pitch
                seg = Segment(0, Point(x0, y), Point(x1, y))
            else:
                x = (rect.xlo + half) // pitch
                y0 = (rect.ylo + half) // pitch
                y1 = (rect.yhi - half) // pitch
                seg = Segment(0, Point(x, y0), Point(x, y1))
            found = det.add_net(pattern.net_id, [seg])
        assert [sc.scenario for sc in found] == [stype]

    def test_custom_rules_scale_geometry(self):
        rules = DesignRules().scaled(2)
        clip = scenario_clip(ScenarioType.T1A, ColorPair.CS, rules)
        a, b = clip[0].rects[0], clip[1].rects[0]
        assert a.height == rules.w_line
        assert b.ylo - a.yhi == rules.w_spacer  # adjacent tracks

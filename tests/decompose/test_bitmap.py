"""Unit tests for the raster canvas and its morphology."""

import numpy as np
import pytest

from repro.decompose import Bitmap
from repro.decompose.bitmap import disc
from repro.errors import GeometryError
from repro.geometry import Rect

WINDOW = Rect(0, 0, 200, 200)


class TestConstruction:
    def test_shape_follows_resolution(self):
        bmp = Bitmap(WINDOW, resolution=5)
        assert bmp.data.shape == (40, 40)

    def test_window_must_align(self):
        with pytest.raises(GeometryError):
            Bitmap(Rect(0, 0, 201, 200), resolution=5)

    def test_bad_resolution(self):
        with pytest.raises(GeometryError):
            Bitmap(WINDOW, resolution=0)

    def test_from_rects(self):
        bmp = Bitmap.from_rects(WINDOW, [Rect(0, 0, 50, 50), Rect(100, 100, 150, 150)])
        assert bmp.count() == 2 * (10 * 10)


class TestDrawing:
    def test_fill_and_sample(self):
        bmp = Bitmap(WINDOW)
        bmp.fill(Rect(10, 10, 30, 30))
        assert bmp.sample(15, 15)
        assert not bmp.sample(35, 35)
        assert not bmp.sample(-100, 0)

    def test_fill_clips_to_window(self):
        bmp = Bitmap(WINDOW)
        bmp.fill(Rect(-50, -50, 10, 10))
        assert bmp.count() == 2 * 2

    def test_area(self):
        bmp = Bitmap(WINDOW)
        bmp.fill(Rect(0, 0, 100, 50))
        assert bmp.area_nm2() == 100 * 50


class TestBooleanAlgebra:
    def test_or_and_sub_invert(self):
        a = Bitmap.from_rects(WINDOW, [Rect(0, 0, 100, 100)])
        b = Bitmap.from_rects(WINDOW, [Rect(50, 0, 150, 100)])
        assert (a | b).area_nm2() == 150 * 100
        assert (a & b).area_nm2() == 50 * 100
        assert (a - b).area_nm2() == 50 * 100
        assert (~a).area_nm2() == 200 * 200 - 100 * 100

    def test_incompatible_windows_rejected(self):
        a = Bitmap(WINDOW)
        b = Bitmap(Rect(0, 0, 100, 100))
        with pytest.raises(GeometryError):
            a | b

    def test_overlaps(self):
        a = Bitmap.from_rects(WINDOW, [Rect(0, 0, 50, 50)])
        b = Bitmap.from_rects(WINDOW, [Rect(40, 40, 90, 90)])
        c = Bitmap.from_rects(WINDOW, [Rect(100, 100, 150, 150)])
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestMorphology:
    def test_disc_structure(self):
        d = disc(2)
        assert d.shape == (5, 5)
        assert d[2, 2]
        assert not d[0, 0]  # corners outside radius 2

    def test_dilate_grows_isotropically(self):
        bmp = Bitmap.from_rects(WINDOW, [Rect(90, 90, 110, 110)])
        grown = bmp.dilate(20)
        assert grown.sample(100, 125)  # 15 nm beyond edge
        assert grown.sample(75, 100)
        assert not grown.sample(75, 75)  # corner: 21+ nm away (Euclidean)

    def test_erode_shrinks(self):
        bmp = Bitmap.from_rects(WINDOW, [Rect(50, 50, 150, 150)])
        shrunk = bmp.erode(20)
        assert shrunk.sample(100, 100)
        assert not shrunk.sample(55, 100)

    def test_dilate_zero_is_copy(self):
        bmp = Bitmap.from_rects(WINDOW, [Rect(50, 50, 60, 60)])
        assert bmp.dilate(0).count() == bmp.count()

    def test_close_bridges_small_gaps(self):
        bmp = Bitmap.from_rects(
            WINDOW, [Rect(0, 90, 95, 110), Rect(105, 90, 200, 110)]
        )  # 10 nm gap
        closed = bmp.close(15)
        assert closed.sample(100, 100)

    def test_close_leaves_big_gaps(self):
        bmp = Bitmap.from_rects(
            WINDOW, [Rect(0, 90, 60, 110), Rect(140, 90, 200, 110)]
        )  # 80 nm gap
        closed = bmp.close(15)
        assert not closed.sample(100, 100)

    def test_misaligned_radius_rejected(self):
        bmp = Bitmap(WINDOW)
        with pytest.raises(GeometryError):
            bmp.dilate(7)


class TestComponents:
    def test_component_count(self):
        bmp = Bitmap.from_rects(
            WINDOW, [Rect(0, 0, 50, 50), Rect(100, 100, 150, 150)]
        )
        assert bmp.component_count() == 2

    def test_components_partition(self):
        bmp = Bitmap.from_rects(
            WINDOW, [Rect(0, 0, 50, 50), Rect(100, 100, 150, 150)]
        )
        comps = bmp.components()
        assert sum(int(c.sum()) for c in comps) == bmp.count()

    def test_ascii_rendering(self):
        bmp = Bitmap(Rect(0, 0, 20, 20), resolution=5)
        bmp.fill(Rect(0, 0, 10, 10))
        art = bmp.to_ascii()
        rows = art.splitlines()
        assert rows[-1].startswith("##")  # bottom row (y=0)
        assert rows[0].startswith("..")

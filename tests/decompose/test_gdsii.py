"""Unit tests for the GDSII stream writer."""

import struct

import pytest

from repro.color import Color
from repro.decompose import GdsWriter, TargetPattern, export_masks_gds, synthesize_masks
from repro.decompose.gdsii import (
    DEFAULT_LAYER_MAP,
    _gds_real8,
    parse_gds_layers,
)
from repro.errors import DecompositionError
from repro.geometry import Rect
from repro.rules import DesignRules


class TestReal8:
    def test_zero(self):
        assert _gds_real8(0.0) == b"\0" * 8

    @pytest.mark.parametrize("value", [1.0, 0.001, 1e-9, 2.5, 1e-3])
    def test_roundtrip(self, value):
        data = _gds_real8(value)
        sign_exp = data[0]
        mantissa = int.from_bytes(data[1:], "big")
        decoded = mantissa / (1 << 56) * 16 ** ((sign_exp & 0x7F) - 64)
        assert decoded == pytest.approx(value, rel=1e-12)

    def test_negative(self):
        data = _gds_real8(-2.0)
        assert data[0] & 0x80


class TestWriter:
    def test_stream_structure(self):
        writer = GdsWriter()
        writer.add_rect("target", Rect(0, 0, 100, 20))
        data = writer.to_bytes()
        # HEADER record with version 600 first.
        length, rtype, dtype = struct.unpack(">HBB", data[:4])
        assert (rtype, dtype) == (0x00, 0x02)
        assert struct.unpack(">h", data[4:6])[0] == 600
        # ENDLIB record last.
        assert data[-2:] == struct.pack(">BB", 0x04, 0x00)

    def test_boundary_counts(self):
        writer = GdsWriter()
        writer.add_rect("target", Rect(0, 0, 10, 10))
        writer.add_rect("cut", Rect(20, 0, 30, 10))
        writer.add_rect("cut", Rect(40, 0, 50, 10))
        counts = parse_gds_layers(writer.to_bytes())
        assert counts[DEFAULT_LAYER_MAP["target"]] == 1
        assert counts[DEFAULT_LAYER_MAP["cut"]] == 2

    def test_numeric_layer(self):
        writer = GdsWriter()
        writer.add_rect(99, Rect(0, 0, 10, 10))
        assert parse_gds_layers(writer.to_bytes()) == {99: 1}

    def test_unknown_name_rejected(self):
        writer = GdsWriter()
        with pytest.raises(DecompositionError):
            writer.add_rect("nonsense", Rect(0, 0, 1, 1))

    def test_negative_coordinates(self):
        writer = GdsWriter()
        writer.add_rect("core", Rect(-50, -50, -10, -10))
        counts = parse_gds_layers(writer.to_bytes())
        assert counts[DEFAULT_LAYER_MAP["core"]] == 1

    def test_write_to_file(self, tmp_path):
        writer = GdsWriter()
        writer.add_rect("spacer", Rect(0, 0, 5, 5))
        path = writer.write(tmp_path / "out.gds")
        assert path.read_bytes()[:2] == b"\x00\x06"  # HEADER length


class TestMaskExport:
    def test_export_masks(self, tmp_path, rules):
        targets = [
            TargetPattern.wire(0, Rect(0, -10, 200, 10), Color.CORE),
            TargetPattern.wire(1, Rect(0, 30, 200, 50), Color.SECOND),
        ]
        masks = synthesize_masks(targets, rules)
        path = export_masks_gds(masks, tmp_path / "masks.gds")
        counts = parse_gds_layers(path.read_bytes())
        assert counts.get(DEFAULT_LAYER_MAP["target"], 0) == 2
        assert counts.get(DEFAULT_LAYER_MAP["core"], 0) >= 1
        assert counts.get(DEFAULT_LAYER_MAP["assist"], 0) >= 1
        assert counts.get(DEFAULT_LAYER_MAP["spacer"], 0) >= 1

    def test_export_without_spacer(self, tmp_path, rules):
        targets = [TargetPattern.wire(0, Rect(0, -10, 200, 10), Color.CORE)]
        masks = synthesize_masks(targets, rules)
        path = export_masks_gds(masks, tmp_path / "m.gds", include_spacer=False)
        counts = parse_gds_layers(path.read_bytes())
        assert DEFAULT_LAYER_MAP["spacer"] not in counts

"""Decomposition behaviour under scaled rule sets and resolutions."""

import pytest

from repro.color import Color
from repro.decompose import (
    TargetPattern,
    measure_overlays,
    synthesize_masks,
    verify_decomposition,
)
from repro.errors import GeometryError
from repro.geometry import Rect
from repro.rules import DesignRules


def hwire(net, xlo, xhi, yc, color, w=10):
    return TargetPattern.wire(net, Rect(xlo, yc - w, xhi, yc + w), color)


class TestScaledRules:
    def test_doubled_rules_preserve_scenario_outcomes(self, rules):
        """The rule relations are scale invariant: doubling every length
        doubles overlays but keeps the qualitative outcome."""
        doubled = rules.scaled(2)
        # 1-a CS at doubled geometry: wires 40 wide, 40 apart.
        t = [
            hwire(0, 0, 800, 0, Color.CORE, w=20),
            hwire(1, 0, 800, 80, Color.SECOND, w=20),
        ]
        report = verify_decomposition(synthesize_masks(t, doubled))
        assert report.prints_correctly
        assert report.overlay.side_overlay_nm == 0

    def test_doubled_rules_hard_case(self, rules):
        doubled = rules.scaled(2)
        t = [
            hwire(0, 0, 800, 0, Color.CORE, w=20),
            hwire(1, 0, 800, 80, Color.CORE, w=20),
        ]
        report = verify_decomposition(synthesize_masks(t, doubled))
        assert report.overlay.hard_overlay_count >= 2

    def test_overlay_units_follow_w_line(self, rules):
        doubled = rules.scaled(2)
        t = [
            hwire(0, 0, 780, 0, Color.CORE, w=20),
            hwire(1, 820, 1600, 80, Color.CORE, w=20),
        ]
        report = measure_overlays(synthesize_masks(t, doubled))
        # 3-a CC at doubled scale: about one (doubled) unit.
        assert 0 < report.side_overlay_nm <= 2 * doubled.w_line


class TestResolutionHandling:
    def test_coarse_resolution_rejected_when_misaligned(self, rules):
        # d_overlap = 5 nm does not divide by 10 nm/px.
        t = [hwire(0, 0, 400, 0, Color.SECOND)]
        with pytest.raises(GeometryError):
            synthesize_masks(t, rules, resolution=10)

    def test_coarse_resolution_works_with_compatible_rules(self):
        rules = DesignRules(d_overlap=10)
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        report = verify_decomposition(synthesize_masks(t, rules, resolution=10))
        assert report.prints_correctly

    def test_fine_resolution_consistent(self, rules):
        t = [hwire(0, 0, 200, 0, Color.CORE), hwire(1, 0, 200, 40, Color.SECOND)]
        coarse = measure_overlays(synthesize_masks(t, rules, resolution=5))
        fine = measure_overlays(synthesize_masks(t, rules, resolution=1))
        assert coarse.side_overlay_nm == fine.side_overlay_nm == 0


class TestExplicitWindows:
    def test_explicit_window_must_cover_targets(self, rules):
        t = [hwire(0, 0, 200, 0, Color.CORE)]
        window = Rect(-100, -100, 400, 100)
        masks = synthesize_masks(t, rules, window=window)
        assert masks.window == window
        assert masks.printed.sample(100, 0)

    def test_misaligned_window_rejected(self, rules):
        t = [hwire(0, 0, 200, 0, Color.CORE)]
        with pytest.raises(GeometryError):
            synthesize_masks(t, rules, window=Rect(-101, -100, 400, 100))

"""Tests for ``routing_to_targets`` — in particular the clip-window path
and layers/nets without segments."""

import pytest

from repro.color import Color
from repro.decompose import routing_to_targets
from repro.geometry import Point, Rect, Segment
from repro.grid import RoutingGrid, default_layer_stack
from repro.router.result import NetRoute, RoutingResult


@pytest.fixture
def grid():
    return RoutingGrid(width=20, height=20, layers=default_layer_stack(2))


def _result(*routes, colorings=None):
    return RoutingResult(
        routes={r.net_id: r for r in routes},
        colorings=colorings or {},
    )


def _hseg(layer, y, x0, x1):
    return Segment(layer, Point(x0, y), Point(x1, y))


class TestBasics:
    def test_colors_from_result_with_core_default(self, grid):
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 2, 1, 8)], success=True),
            NetRoute(net_id=1, segments=[_hseg(0, 4, 1, 8)], success=True),
            colorings={0: {0: Color.SECOND}},
        )
        targets = routing_to_targets(grid, result, 0)
        by_net = {t.net_id: t for t in targets}
        assert by_net[0].color == Color.SECOND
        assert by_net[1].color == Color.CORE  # uncolored nets default to CORE

    def test_failed_routes_excluded(self, grid):
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 2, 1, 8)], success=False),
            NetRoute(net_id=1, segments=[_hseg(0, 4, 1, 8)], success=True),
        )
        targets = routing_to_targets(grid, result, 0)
        assert [t.net_id for t in targets] == [1]

    def test_layer_without_segments_is_empty(self, grid):
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 2, 1, 8)], success=True)
        )
        assert routing_to_targets(grid, result, 1) == []

    def test_net_with_no_segments_on_layer_omitted(self, grid):
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 2, 1, 8)], success=True),
            NetRoute(net_id=1, segments=[_hseg(1, 4, 1, 8)], success=True),
        )
        targets = routing_to_targets(grid, result, 0)
        assert [t.net_id for t in targets] == [0]


class TestClipWindow:
    def test_segment_straddling_clip_boundary_is_kept(self, grid):
        # A segment from x=2 to x=15 overlaps a clip ending at x=10; the
        # whole segment must survive (clipping selects, it never cuts).
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 5, 2, 15)], success=True)
        )
        clip = Rect(0, 0, 10, 10)
        targets = routing_to_targets(grid, result, 0, clip=clip)
        assert len(targets) == 1
        rect = targets[0].rects[0]
        pitch = grid.rules.pitch
        # Full extent in nm, not truncated at the clip edge.
        assert rect.xhi >= 15 * pitch - grid.rules.w_line

    def test_segment_outside_clip_dropped(self, grid):
        result = _result(
            NetRoute(
                net_id=0,
                segments=[_hseg(0, 5, 2, 6), _hseg(0, 15, 12, 18)],
                success=True,
            )
        )
        targets = routing_to_targets(grid, result, 0, clip=Rect(0, 0, 10, 10))
        assert len(targets) == 1
        assert len(targets[0].rects) == 1
        assert len(targets[0].horizontal) == 1

    def test_net_entirely_outside_clip_omitted(self, grid):
        result = _result(
            NetRoute(net_id=0, segments=[_hseg(0, 15, 12, 18)], success=True),
            NetRoute(net_id=1, segments=[_hseg(0, 5, 2, 6)], success=True),
        )
        targets = routing_to_targets(grid, result, 0, clip=Rect(0, 0, 10, 10))
        assert [t.net_id for t in targets] == [1]

    def test_no_clip_equals_full_window_clip(self, grid):
        result = _result(
            NetRoute(
                net_id=0,
                segments=[_hseg(0, 5, 2, 6), _hseg(0, 15, 12, 18)],
                success=True,
            )
        )
        full = Rect(0, 0, grid.width, grid.height)
        assert routing_to_targets(grid, result, 0) == routing_to_targets(
            grid, result, 0, clip=full
        )

"""Compact physics audit of the scenario table (Table II, in the suite).

The full enumeration lives in ``benchmarks/bench_table2.py``; this test
keeps the load-bearing physical facts under plain ``pytest tests/`` so a
regression in the decomposition engine cannot hide until a bench run.
"""

import pytest

from repro.color import ColorPair
from repro.core import ScenarioType
from repro.decompose import scenario_clip, synthesize_masks, verify_decomposition
from repro.rules import DesignRules

RULES = DesignRules()


def measure(stype, pair):
    report = verify_decomposition(
        synthesize_masks(scenario_clip(stype, pair, RULES), RULES)
    )
    units = report.overlay.side_overlay_nm / RULES.w_line
    clean = report.prints_correctly and report.overlay.hard_overlay_count == 0
    return units, clean


class TestHardScenarios:
    @pytest.mark.parametrize("pair", [ColorPair.CC, ColorPair.SS])
    def test_1a_same_colors_catastrophic(self, pair):
        units, clean = measure(ScenarioType.T1A, pair)
        assert units > 1 or not clean

    @pytest.mark.parametrize("pair", [ColorPair.CS, ColorPair.SC])
    def test_1a_different_colors_clean(self, pair):
        assert measure(ScenarioType.T1A, pair) == (0, True)


class TestMergeTechnique:
    @pytest.mark.parametrize("pair", [ColorPair.CC, ColorPair.SS])
    def test_1b_same_colors_free(self, pair):
        """The headline flexibility: merge + cut costs no side overlay."""
        assert measure(ScenarioType.T1B, pair) == (0, True)

    def test_1b_mixed_worse_than_merged(self):
        merged, _ = measure(ScenarioType.T1B, ColorPair.CC)
        mixed, _ = measure(ScenarioType.T1B, ColorPair.CS)
        assert mixed > merged


class TestAssistMerging:
    def test_2a_same_colors_clean(self):
        assert measure(ScenarioType.T2A, ColorPair.CC) == (0, True)
        units, _ = measure(ScenarioType.T2A, ColorPair.SS)
        assert units == 0

    @pytest.mark.parametrize("pair", [ColorPair.CS, ColorPair.SC])
    def test_2a_mixed_colors_severe(self, pair):
        units, _ = measure(ScenarioType.T2A, pair)
        assert units > 2


class TestDiagonals:
    def test_3a_cc_costs_about_one_unit(self):
        units, clean = measure(ScenarioType.T3A, ColorPair.CC)
        assert 0 < units <= 2
        assert clean

    def test_3a_mixed_clean(self):
        assert measure(ScenarioType.T3A, ColorPair.CS)[0] == 0

    def test_3e_trivial(self):
        for pair in ColorPair:
            assert measure(ScenarioType.T3E, pair) == (0, True)


class TestPerNetAttribution:
    def test_victim_identified(self):
        # 2-a CS: the assist of the second pattern merges with the core
        # (net 0) — net 0's flank carries the overlay.
        report = verify_decomposition(
            synthesize_masks(
                scenario_clip(ScenarioType.T2A, ColorPair.CS, RULES), RULES
            )
        )
        totals = report.overlay.per_net_side_overlay()
        worst = report.overlay.worst_net()
        assert worst is not None
        assert worst[0] == 0
        assert totals[0] == worst[1] > 0

"""Unit tests for the trim-process decomposition (baseline substrate)."""

import pytest

from repro.color import Color
from repro.decompose import TargetPattern, synthesize_trim_masks
from repro.decompose.trim import measure_trim_overlays
from repro.geometry import Rect


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


class TestTrimMasks:
    def test_core_prints_directly(self, rules):
        ms = synthesize_trim_masks([hwire(0, 0, 400, 0, Color.CORE)], rules)
        assert ms.printed.sample(200, 0)
        assert ms.conflict_count == 0

    def test_second_prints_through_trim(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        ms = synthesize_trim_masks(t, rules)
        assert ms.printed.sample(200, 40)
        assert ms.trim_mask.sample(200, 40)

    def test_core_spacing_conflict(self, rules):
        # Two cores 20 nm apart: not mergeable in the trim process.
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.CORE)]
        ms = synthesize_trim_masks(t, rules)
        assert ms.core_spacing_conflicts == [(0, 1)]

    def test_trim_line_end_conflict(self, rules):
        # Two second wires abutting tip-to-tip: trim edges too close.
        t = [hwire(0, 0, 190, 0, Color.SECOND), hwire(1, 210, 400, 0, Color.SECOND)]
        ms = synthesize_trim_masks(t, rules)
        assert ms.trim_conflicts

    def test_core_tips_do_not_conflict(self, rules):
        t = [hwire(0, 0, 190, 0, Color.CORE), hwire(1, 210, 400, 0, Color.SECOND)]
        ms = synthesize_trim_masks(t, rules)
        assert ms.trim_conflicts == []


class TestTrimOverlay:
    def test_unprotected_second_overlays_both_flanks(self, rules):
        # A lone second wire has no assists in the trim flow: both flanks
        # are trim-defined -> side overlay ~ 2x length.
        ms = synthesize_trim_masks([hwire(0, 0, 400, 0, Color.SECOND)], rules)
        report = measure_trim_overlays(ms)
        assert report.side_overlay_nm >= 2 * 390

    def test_core_neighbour_protects_one_flank(self, rules):
        t = [hwire(0, 0, 400, 0, Color.CORE), hwire(1, 0, 400, 40, Color.SECOND)]
        ms = synthesize_trim_masks(t, rules)
        report = measure_trim_overlays(ms)
        # South flank protected by the core's spacer; north flank exposed.
        assert 380 <= report.side_overlay_nm <= 500

    def test_core_patterns_never_counted(self, rules):
        ms = synthesize_trim_masks([hwire(0, 0, 400, 0, Color.CORE)], rules)
        report = measure_trim_overlays(ms)
        assert report.side_overlay_nm == 0

"""Unit tests for SVG internals (bitmap -> rectangle conversion)."""

import pytest

from repro.decompose import Bitmap
from repro.geometry import Rect
from repro.viz.svg import MASK_STYLES, SvgCanvas, _bitmap_rects


class TestBitmapRects:
    def test_empty_bitmap(self):
        bmp = Bitmap(Rect(0, 0, 100, 100))
        assert _bitmap_rects(bmp) == []

    def test_single_rect_roundtrip_area(self):
        bmp = Bitmap(Rect(0, 0, 100, 100))
        bmp.fill(Rect(10, 20, 60, 40))
        rects = _bitmap_rects(bmp)
        assert sum(r.area for r in rects) == 50 * 20

    def test_runs_are_row_wise_and_disjoint(self):
        bmp = Bitmap(Rect(0, 0, 100, 100))
        bmp.fill(Rect(0, 0, 30, 10))
        bmp.fill(Rect(50, 0, 80, 10))
        rects = _bitmap_rects(bmp)
        for i, a in enumerate(rects):
            assert a.height == bmp.resolution  # one row per rect
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_coordinates_respect_window_origin(self):
        bmp = Bitmap(Rect(-100, -100, 0, 0))
        bmp.fill(Rect(-50, -50, -40, -45))
        rects = _bitmap_rects(bmp)
        assert rects[0].xlo == -50
        assert rects[0].ylo == -50


class TestCanvas:
    def test_y_axis_is_flipped(self):
        canvas = SvgCanvas(Rect(0, 0, 100, 100), scale=1.0)
        canvas.add_rect(Rect(0, 90, 10, 100), "#000")  # top of the window
        text = canvas.to_string()
        assert 'y="0.0"' in text  # drawn at the top of the image

    def test_styles_table_well_formed(self):
        for name, (color, opacity) in MASK_STYLES.items():
            assert color.startswith("#") or color == "none"
            assert 0 <= opacity <= 1

    def test_add_layer_uses_style(self):
        canvas = SvgCanvas(Rect(0, 0, 10, 10), scale=1.0)
        canvas.add_layer([Rect(0, 0, 5, 5)], "cut")
        assert MASK_STYLES["cut"][0] in canvas.to_string()

    def test_unknown_style_defaults_to_black(self):
        canvas = SvgCanvas(Rect(0, 0, 10, 10), scale=1.0)
        canvas.add_layer([Rect(0, 0, 5, 5)], "mystery")
        assert "#000000" in canvas.to_string()


class TestStackRendering:
    def test_render_stack_svg(self, tmp_path):
        from repro.grid import RoutingGrid
        from repro.netlist import Net, Netlist, Pin
        from repro.router import SadpRouter
        from repro.viz import render_stack_svg

        grid = RoutingGrid(12, 12)
        nets = Netlist([Net(0, "a", Pin.at(1, 2), Pin.at(9, 8))])
        result = SadpRouter(grid, nets).route_all()
        path = render_stack_svg(grid, result.colorings, tmp_path / "stack.svg")
        text = path.read_text()
        assert text.startswith("<svg")
        # The net used at least layers M1 and M2; both labels appear.
        assert "M1 net 0" in text
        assert "M2 net 0" in text

"""Unit tests for ASCII and SVG rendering."""

import pytest

from repro.color import Color
from repro.decompose import TargetPattern, synthesize_masks
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter
from repro.rules import DesignRules
from repro.viz import SvgCanvas, render_coloring, render_layer, render_masks_svg, render_routing_svg


class TestAscii:
    def test_render_layer_glyphs(self):
        grid = RoutingGrid(4, 4)
        grid.occupy(0, Point(0, 0), 1)
        grid.block(0, Rect(3, 3, 4, 4))
        art = render_layer(grid, 0)
        rows = art.splitlines()
        assert rows[-1][0] == "1"  # y=0 at bottom
        assert rows[0][3] == "#"

    def test_render_layer_with_colors(self):
        grid = RoutingGrid(4, 4)
        grid.occupy(0, Point(0, 0), 1)
        grid.occupy(0, Point(1, 0), 2)
        grid.occupy(0, Point(2, 0), 3)
        art = render_layer(
            grid, 0, coloring={1: Color.CORE, 2: Color.SECOND}
        )
        bottom = art.splitlines()[-1]
        assert bottom.startswith("Cs?")

    def test_render_coloring_all_layers(self):
        grid = RoutingGrid(4, 4)
        text = render_coloring(grid, {})
        assert "M1 (H)" in text and "M2 (V)" in text and "M3 (H)" in text


class TestSvg:
    def test_canvas_roundtrip(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 100, 100), scale=1.0)
        canvas.add_rect(Rect(10, 10, 30, 30), "#ff0000", title="hello")
        path = canvas.write(tmp_path / "out.svg")
        text = path.read_text()
        assert text.startswith("<svg")
        assert "hello" in text
        assert text.rstrip().endswith("</svg>")

    def test_render_masks_svg(self, tmp_path):
        rules = DesignRules()
        targets = [
            TargetPattern.wire(0, Rect(0, -10, 200, 10), Color.CORE),
            TargetPattern.wire(1, Rect(0, 30, 200, 50), Color.SECOND),
        ]
        masks = synthesize_masks(targets, rules)
        path = render_masks_svg(masks, tmp_path / "masks.svg")
        text = path.read_text()
        assert "<rect" in text
        assert "net 0" in text

    def test_render_routing_svg(self, tmp_path):
        grid = RoutingGrid(10, 10)
        nets = Netlist([Net(0, "a", Pin.at(1, 2), Pin.at(8, 2))])
        result = SadpRouter(grid, nets).route_all()
        path = render_routing_svg(grid, result.colorings, tmp_path / "route.svg")
        assert path.exists()
        assert "<svg" in path.read_text()

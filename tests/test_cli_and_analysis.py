"""Tests for the CLI and the analysis/report module."""

import json

import pytest

from repro.analysis import analyze, breakdown_by_scenario
from repro.cli import build_parser, main
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter

NETLIST_TEXT = """\
a L0 2,10 -> L0 20,10
b L0 2,11 -> L0 20,11
c L0 21,10 -> L0 27,10
"""


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "nets.txt"
    path.write_text(NETLIST_TEXT)
    return path


class TestCli:
    def test_route_basic(self, netlist_file, capsys):
        rc = main(["route", str(netlist_file), "--width", "30", "--height", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "routed 3/3" in out
        assert "0 cut conflicts" in out

    def test_route_artifacts(self, netlist_file, tmp_path, capsys):
        out_json = tmp_path / "r.json"
        out_svg = tmp_path / "r.svg"
        rc = main(
            [
                "route",
                str(netlist_file),
                "--width",
                "30",
                "--height",
                "30",
                "--out",
                str(out_json),
                "--svg",
                str(out_svg),
                "--report",
            ]
        )
        assert rc == 0
        assert json.loads(out_json.read_text())["schema"] == 1
        assert out_svg.read_text().startswith("<svg")
        assert "Routing report" in capsys.readouterr().out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "1-a" in out and "3-e" in out

    def test_bench_command(self, capsys):
        assert main(["bench", "Test1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Test1" in out and "ours" in out

    def test_bench_baseline(self, capsys):
        assert main(["bench", "Test1", "--scale", "0.1", "--router", "gao-pan"]) == 0
        assert "gao-pan" in capsys.readouterr().out

    def test_unknown_circuit_errors(self, capsys):
        assert main(["bench", "Test42"]) == 2
        assert "error" in capsys.readouterr().err

    def test_route_with_metrics_and_trace(self, netlist_file, tmp_path, capsys):
        from repro import obs

        log = tmp_path / "run.jsonl"
        rc = main(
            [
                "route",
                str(netlist_file),
                "--width",
                "30",
                "--height",
                "30",
                "--metrics",
                "--trace",
                str(log),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-phase runtime" in out
        assert "search" in out
        assert "astar_searches_total" in out
        assert log.exists()
        # the CLI turns observability back off after the command
        assert obs.get_active() is None

    def test_bench_with_metrics_prints_phase_columns(self, capsys):
        rc = main(["bench", "Test1", "--scale", "0.1", "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "search(s)" in out and "graph(s)" in out and "flip(s)" in out
        assert "per-phase runtime" in out

    def test_validate_trace_roundtrip(self, netlist_file, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        main(
            [
                "route",
                str(netlist_file),
                "--width",
                "30",
                "--height",
                "30",
                "--trace",
                str(log),
            ]
        )
        capsys.readouterr()
        assert main(["validate-trace", str(log)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert main(["validate-trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_parser_has_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["--version"])
        assert exc.value.code == 0

    def test_route_exit_code_nonzero_on_unrouted_net(self, tmp_path, capsys):
        # Wall in one net's source pin; the router must fail that net and
        # the CLI must report the partial result with a nonzero exit code.
        path = tmp_path / "blocked.txt"
        path.write_text(
            "BLOCK L0 4,4,7,7\n"
            "a L0 5,5 -> L0 9,9\n"
            "b L0 0,0 -> L0 3,0\n"
        )
        rc = main(["route", str(path), "--width", "10", "--height", "10"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "routed 1/2" in out

    def test_route_exit_code_zero_on_full_success(self, netlist_file, capsys):
        rc = main(["route", str(netlist_file), "--width", "30", "--height", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "routed 3/3" in out

    def test_route_missing_netlist_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        rc = main(["route", str(missing), "--width", "10", "--height", "10"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert "nope.txt" in err
        assert "Traceback" not in err

    def test_route_malformed_netlist_reports_path_and_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("a L0 2,10 -> L0 20,10\nthis is not a net\n")
        rc = main(["route", str(bad), "--width", "30", "--height", "30"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "bad.txt" in err
        assert "line 2" in err

    def test_route_netlist_path_is_directory(self, tmp_path, capsys):
        rc = main(["route", str(tmp_path), "--width", "10", "--height", "10"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "directory" in err


class TestAnalysis:
    @pytest.fixture
    def routed(self):
        grid = RoutingGrid(26, 26)
        nets = Netlist(
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
                Net(2, "c", Pin.at(2, 8), Pin.at(20, 8)),
            ]
        )
        router = SadpRouter(grid, nets)
        return router, router.route_all()

    def test_report_counts(self, routed):
        router, result = routed
        report = analyze(router, result)
        assert report.num_nets == 3
        assert report.routed == 3
        assert report.total_wirelength == result.total_wirelength
        assert report.scenario_census.get("1-a") == 1
        assert report.scenario_census.get("2-a") == 1

    def test_color_census(self, routed):
        router, result = routed
        report = analyze(router, result)
        m1 = report.colors_per_layer[0]
        assert m1.get("C", 0) + m1.get("S", 0) == 3

    def test_text_rendering(self, routed):
        router, result = routed
        text = analyze(router, result).to_text()
        assert "Routing report" in text
        assert "scenario census" in text
        assert "mask color census" in text

    def test_breakdown_matches_result_total(self, routed):
        router, result = routed
        breakdown = breakdown_by_scenario(router)
        assert breakdown.total_units == pytest.approx(result.overlay_units)

    def test_dominant_scenario(self, routed):
        router, result = routed
        breakdown = breakdown_by_scenario(router)
        if breakdown.units_by_scenario:
            assert breakdown.dominant() in breakdown.units_by_scenario
        else:
            assert breakdown.dominant() == "-"

    def test_no_instrumentation_section_when_disabled(self, routed):
        router, result = routed
        report = analyze(router, result)
        assert report.instrumentation is None
        assert "instrumentation" not in report.to_text()

    def test_instrumentation_section_when_enabled(self):
        from repro import obs

        with obs.session():
            grid = RoutingGrid(26, 26)
            nets = Netlist([Net(0, "a", Pin.at(2, 5), Pin.at(20, 5))])
            router = SadpRouter(grid, nets)
            result = router.route_all()
            report = analyze(router, result)
        assert report.instrumentation is not None
        assert report.instrumentation["phase_seconds"].get("search", 0) > 0
        text = report.to_text()
        assert "instrumentation:" in text
        assert "search_s" in text

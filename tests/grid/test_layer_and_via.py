"""Unit tests for layers and vias."""

import pytest

from repro.errors import GridError
from repro.geometry import Point
from repro.grid import Direction, RoutingLayer, Via, default_layer_stack


class TestDirection:
    def test_orthogonal(self):
        assert Direction.HORIZONTAL.orthogonal is Direction.VERTICAL
        assert Direction.VERTICAL.orthogonal is Direction.HORIZONTAL


class TestRoutingLayer:
    def test_negative_index_rejected(self):
        with pytest.raises(GridError):
            RoutingLayer(index=-1, name="M0", direction=Direction.HORIZONTAL)

    def test_default_stack_alternates(self):
        stack = default_layer_stack(4)
        assert [l.name for l in stack] == ["M1", "M2", "M3", "M4"]
        assert stack[0].direction is Direction.HORIZONTAL
        assert stack[1].direction is Direction.VERTICAL
        assert stack[3].direction is Direction.VERTICAL

    def test_empty_stack_rejected(self):
        with pytest.raises(GridError):
            default_layer_stack(0)


class TestVia:
    def test_upper_layer(self):
        via = Via(lower=1, at=Point(3, 4))
        assert via.upper == 2

    def test_negative_layer_rejected(self):
        with pytest.raises(GridError):
            Via(lower=-1, at=Point(0, 0))

    def test_ordering_and_equality(self):
        assert Via(0, Point(1, 1)) == Via(0, Point(1, 1))
        assert Via(0, Point(1, 1)) < Via(1, Point(0, 0))

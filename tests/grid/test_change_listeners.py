"""The occupancy-change notification hook."""

import pytest

from repro.errors import GridError
from repro.geometry import Point, Rect
from repro.grid import RoutingGrid


class Recorder:
    def __init__(self):
        self.cells = []
        self.resets = 0

    def on_cells_changed(self, cells):
        self.cells.extend(cells)

    def on_grid_reset(self):
        self.resets += 1


@pytest.fixture
def grid():
    return RoutingGrid(10, 10)


@pytest.fixture
def recorder(grid):
    rec = Recorder()
    grid.add_change_listener(rec)
    return rec


def test_occupy_notifies(grid, recorder):
    grid.occupy(1, Point(3, 4), 7)
    assert recorder.cells == [(1, 3, 4)]


def test_reoccupy_same_net_is_silent(grid, recorder):
    grid.occupy(0, Point(2, 2), 5)
    grid.occupy(0, Point(2, 2), 5)  # no occupancy change
    assert recorder.cells == [(0, 2, 2)]


def test_release_notifies_only_on_actual_release(grid, recorder):
    grid.occupy(0, Point(1, 1), 3)
    grid.release(0, Point(1, 1), 99)  # wrong owner: no-op
    grid.release(0, Point(1, 1), 3)
    assert recorder.cells == [(0, 1, 1), (0, 1, 1)]


def test_release_net_reports_every_cell(grid, recorder):
    for x in range(3):
        grid.occupy(0, Point(x, 5), 9)
    recorder.cells.clear()
    assert grid.release_net(9) == 3
    assert sorted(recorder.cells) == [(0, 0, 5), (0, 1, 5), (0, 2, 5)]


def test_release_net_of_absent_net_is_silent(grid, recorder):
    assert grid.release_net(42) == 0
    assert recorder.cells == []


def test_block_signals_bulk_reset(grid, recorder):
    grid.block(0, Rect(2, 2, 5, 5))
    assert recorder.resets == 1


def test_remove_listener_stops_notifications(grid, recorder):
    grid.remove_change_listener(recorder)
    grid.occupy(0, Point(0, 0), 1)
    assert recorder.cells == []


def test_copy_does_not_share_listeners(grid, recorder):
    clone = grid.copy()
    clone.occupy(0, Point(4, 4), 2)
    assert recorder.cells == []


def test_failed_occupy_does_not_notify(grid, recorder):
    grid.occupy(0, Point(6, 6), 1)
    recorder.cells.clear()
    with pytest.raises(GridError):
        grid.occupy(0, Point(6, 6), 2)
    assert recorder.cells == []

"""Unit tests for the multi-layer occupancy grid."""

import pytest

from repro.errors import GridError
from repro.geometry import Point, Rect, Segment
from repro.grid import CellState, Direction, RoutingGrid, default_layer_stack


class TestConstruction:
    def test_default_stack_is_hvh(self):
        grid = RoutingGrid(10, 10)
        assert [l.direction for l in grid.layers] == [
            Direction.HORIZONTAL,
            Direction.VERTICAL,
            Direction.HORIZONTAL,
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(GridError):
            RoutingGrid(0, 10)

    def test_bad_layer_indices_rejected(self):
        layers = default_layer_stack(2)
        with pytest.raises(GridError):
            RoutingGrid(5, 5, layers=list(reversed(layers)))

    def test_track_grid_pitch_from_rules(self):
        grid = RoutingGrid(5, 5)
        assert grid.track_grid.pitch_nm == 40
        assert grid.track_grid.wire_width_nm == 20


class TestOccupancy:
    def test_initially_free(self):
        grid = RoutingGrid(5, 5)
        assert grid.is_free(0, Point(2, 2))
        assert grid.owner(0, Point(2, 2)) == CellState.FREE

    def test_occupy_and_release(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(1, Point(2, 2), 7)
        assert grid.owner(1, Point(2, 2)) == 7
        assert not grid.is_free(1, Point(2, 2))
        assert grid.is_available(1, Point(2, 2), 7)
        assert not grid.is_available(1, Point(2, 2), 8)
        grid.release(1, Point(2, 2), 7)
        assert grid.is_free(1, Point(2, 2))

    def test_release_wrong_owner_is_noop(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(0, Point(1, 1), 3)
        grid.release(0, Point(1, 1), 4)
        assert grid.owner(0, Point(1, 1)) == 3

    def test_double_occupy_conflict(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(0, Point(1, 1), 3)
        with pytest.raises(GridError):
            grid.occupy(0, Point(1, 1), 4)
        grid.occupy(0, Point(1, 1), 3)  # idempotent for same net

    def test_negative_net_id_rejected(self):
        grid = RoutingGrid(5, 5)
        with pytest.raises(GridError):
            grid.occupy(0, Point(0, 0), -3)

    def test_out_of_bounds(self):
        grid = RoutingGrid(5, 5)
        with pytest.raises(GridError):
            grid.owner(0, Point(5, 0))
        with pytest.raises(GridError):
            grid.owner(3, Point(0, 0))

    def test_release_net_bulk(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(0, Point(0, 0), 1)
        grid.occupy(1, Point(1, 1), 1)
        grid.occupy(0, Point(2, 2), 2)
        assert grid.release_net(1) == 2
        assert grid.is_free(0, Point(0, 0))
        assert grid.owner(0, Point(2, 2)) == 2

    def test_block_region(self):
        grid = RoutingGrid(5, 5)
        grid.block(0, Rect(1, 1, 3, 3))
        assert grid.owner(0, Point(1, 1)) == CellState.BLOCKED
        assert grid.owner(0, Point(2, 2)) == CellState.BLOCKED
        assert grid.is_free(0, Point(3, 3))
        assert grid.blocked_cells(0) == 4

    def test_occupy_segment(self):
        grid = RoutingGrid(5, 5)
        grid.occupy_segment(Segment(0, Point(0, 2), Point(3, 2)), 9)
        assert all(grid.owner(0, Point(x, 2)) == 9 for x in range(4))

    def test_utilization(self):
        grid = RoutingGrid(2, 2, layers=default_layer_stack(1))
        assert grid.utilization() == 0.0
        grid.occupy(0, Point(0, 0), 1)
        assert grid.utilization() == pytest.approx(0.25)

    def test_cells_of_net(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(0, Point(1, 2), 4)
        grid.occupy(2, Point(3, 3), 4)
        cells = set(grid.cells_of_net(4))
        assert cells == {(0, Point(1, 2)), (2, Point(3, 3))}

    def test_copy_is_independent(self):
        grid = RoutingGrid(5, 5)
        grid.occupy(0, Point(0, 0), 1)
        clone = grid.copy()
        clone.occupy(0, Point(1, 1), 2)
        assert grid.is_free(0, Point(1, 1))
        assert clone.owner(0, Point(0, 0)) == 1


class TestGeometryLowering:
    def test_segment_to_nm_horizontal(self):
        grid = RoutingGrid(20, 20)
        rect = grid.segment_to_nm(Segment(0, Point(1, 2), Point(4, 2)))
        # Track centres at 40*x; wire 20 wide.
        assert rect == Rect(40 - 10, 80 - 10, 160 + 10, 80 + 10)

    def test_segment_to_nm_point(self):
        grid = RoutingGrid(20, 20)
        rect = grid.segment_to_nm(Segment(0, Point(3, 3), Point(3, 3)))
        assert rect.width == 20 and rect.height == 20

    def test_layer_direction(self):
        grid = RoutingGrid(5, 5)
        assert grid.layer_direction(1) is Direction.VERTICAL
        with pytest.raises(GridError):
            grid.layer_direction(9)

"""Unit tests for the trim-process accounting model."""

import pytest

from repro.color import Color
from repro.core.scenario_detect import DetectedScenario, ShapeRecord
from repro.core.scenarios import ScenarioType
from repro.baselines import TrimAccounting
from repro.geometry import Rect
from repro.rules import DesignRules


def record(net, x0, x1, y, layer=0):
    return ShapeRecord(net_id=net, rect=Rect(x0, y, x1 + 1, y + 1), horizontal=True, layer=layer)


def scenario(stype, a, b, ra, rb, layer=0):
    return DetectedScenario(
        layer=layer, net_a=a, net_b=b, scenario=stype,
        a_is_tip_owner=True, overlap=1, rect_a=ra, rect_b=rb,
    )


@pytest.fixture
def acc(rules):
    return TrimAccounting(rules, num_layers=1)


class TestConflicts:
    def test_1a_same_color_conflicts(self, acc):
        sc = scenario(ScenarioType.T1A, 0, 1, Rect(0, 0, 10, 1), Rect(0, 1, 10, 2))
        assert acc.pair_conflicts(sc, Color.CORE, Color.CORE) == 1
        assert acc.pair_conflicts(sc, Color.SECOND, Color.SECOND) == 1
        assert acc.pair_conflicts(sc, Color.CORE, Color.SECOND) == 0

    def test_1b_same_color_conflicts(self, acc):
        sc = scenario(ScenarioType.T1B, 0, 1, Rect(0, 0, 5, 1), Rect(5, 0, 10, 1))
        assert acc.pair_conflicts(sc, Color.CORE, Color.CORE) == 1
        assert acc.pair_conflicts(sc, Color.SECOND, Color.SECOND) == 1

    def test_3a_cc_only(self, acc):
        sc = scenario(ScenarioType.T3A, 0, 1, Rect(0, 0, 5, 1), Rect(6, 1, 10, 2))
        assert acc.pair_conflicts(sc, Color.CORE, Color.CORE) == 1
        assert acc.pair_conflicts(sc, Color.SECOND, Color.SECOND) == 0

    def test_visible_covers_aligned_rules_only(self, acc):
        # The published trim routers see the aligned rules (1-a, 1-b)...
        sc_1a = scenario(ScenarioType.T1A, 0, 1, Rect(0, 0, 10, 1), Rect(0, 1, 10, 2))
        sc_1b = scenario(ScenarioType.T1B, 0, 1, Rect(0, 0, 5, 1), Rect(5, 0, 10, 1))
        assert acc.visible_pair_conflicts(sc_1a, Color.CORE, Color.CORE) == 1
        assert acc.visible_pair_conflicts(sc_1b, Color.CORE, Color.CORE) == 1
        # ...but are blind to the diagonal scenarios.
        sc_3a = scenario(ScenarioType.T3A, 0, 1, Rect(0, 0, 5, 1), Rect(6, 1, 10, 2))
        assert acc.visible_pair_conflicts(sc_3a, Color.CORE, Color.CORE) == 0
        assert acc.pair_conflicts(sc_3a, Color.CORE, Color.CORE) == 1


class TestOverlay:
    def test_core_fragment_free(self, acc):
        rec = record(0, 0, 9, 5)
        acc.add_net(0, [rec], [])
        assert acc.fragment_overlay_nm(rec, {0: Color.CORE}) == 0

    def test_lone_second_fully_exposed(self, acc, rules):
        rec = record(0, 0, 9, 5)
        acc.add_net(0, [rec], [])
        # Both flanks exposed: 2 x 10 cells x pitch.
        assert acc.fragment_overlay_nm(rec, {0: Color.SECOND}) == 2 * 10 * rules.pitch

    def test_core_neighbour_protects_interval(self, acc, rules):
        rec = record(0, 0, 9, 5)
        core = record(1, 0, 4, 6)
        sc = scenario(ScenarioType.T1A, 0, 1, rec.rect, core.rect)
        acc.add_net(0, [rec], [sc])
        acc.add_net(1, [core], [])
        coloring = {0: Color.SECOND, 1: Color.CORE}
        # North flank protected over x 0..4 (5 cells): 20 - 5 = 15 exposed.
        assert acc.fragment_overlay_nm(rec, coloring) == 15 * rules.pitch

    def test_second_neighbour_does_not_protect(self, acc, rules):
        rec = record(0, 0, 9, 5)
        other = record(1, 0, 9, 6)
        sc = scenario(ScenarioType.T1A, 0, 1, rec.rect, other.rect)
        acc.add_net(0, [rec], [sc])
        acc.add_net(1, [other], [])
        coloring = {0: Color.SECOND, 1: Color.SECOND}
        assert acc.fragment_overlay_nm(rec, coloring) == 20 * rules.pitch


class TestEvaluate:
    def test_totals(self, acc, rules):
        rec0 = record(0, 0, 9, 5)
        rec1 = record(1, 0, 9, 6)
        sc = scenario(ScenarioType.T1A, 1, 0, rec1.rect, rec0.rect)
        acc.add_net(0, [rec0], [])
        acc.add_net(1, [rec1], [sc])
        colorings = [{0: Color.CORE, 1: Color.CORE}]
        ev = acc.evaluate(colorings)
        assert ev.conflicts == 1
        assert ev.overlay_nm == 0  # both core

    def test_remove_net(self, acc):
        rec0 = record(0, 0, 9, 5)
        rec1 = record(1, 0, 9, 6)
        sc = scenario(ScenarioType.T1A, 1, 0, rec1.rect, rec0.rect)
        acc.add_net(0, [rec0], [])
        acc.add_net(1, [rec1], [sc])
        acc.remove_net(1)
        ev = acc.evaluate([{0: Color.CORE}])
        assert ev.conflicts == 0
        assert acc.scenarios_of(0) == []

"""Focused tests of baseline internals: pricing, undo, metrics."""

import pytest

from repro.baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
from repro.color import Color
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin


def build(router_cls, nets, size=26, **kw):
    return router_cls(RoutingGrid(size, size), Netlist(nets), **kw)


class TestCutNoMergePricing:
    def test_1b_always_conflict(self):
        router = build(
            CutNoMergeRouter,
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(10, 5)),
                Net(1, "b", Pin.at(11, 5), Pin.at(20, 5)),
            ],
        )
        result = router.route_all()
        # Either net 1 avoided the abutment (detour) or the committed
        # result carries the 1-b conflict in the complete evaluation.
        route1 = result.routes[1]
        if route1.success and route1.wirelength == 9 and route1.via_count == 0:
            assert result.cut_conflicts >= 1

    def test_undo_clears_edges(self):
        router = build(
            CutNoMergeRouter,
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
            ],
        )
        router.route_all()
        edges_before = len(router._all_edges)
        router.on_undo(1)
        assert len(router._all_edges) < edges_before or edges_before == 0

    def test_metrics_count_cut_risks(self):
        # 2-a CS is a type A cut risk; the complete model charges [16]
        # with it when its greedy coloring picks it.
        router = build(
            CutNoMergeRouter,
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 7), Pin.at(20, 7)),
            ],
        )
        result = router.route_all()
        # Same colors chosen by the conflict-driven greedy -> no risk; the
        # assertion is about well-formedness, not a specific count.
        assert result.cut_conflicts >= 0
        assert result.overlay_units >= 0


class TestGaoPanMetrics:
    def test_second_flank_exposure_counted(self):
        router = build(
            GaoPanTrimRouter,
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 6), Pin.at(20, 6)),
            ],
        )
        result = router.route_all()
        if result.routability == 1.0:
            colors = router.colorings[0]
            if Color.SECOND in colors.values():
                # A SECOND wire without assists exposes at least its far
                # flank over its full run.
                assert result.overlay_nm >= 17 * router.grid.rules.pitch

    def test_all_core_when_sparse(self):
        router = build(
            GaoPanTrimRouter,
            [
                Net(0, "a", Pin.at(2, 5), Pin.at(20, 5)),
                Net(1, "b", Pin.at(2, 15), Pin.at(20, 15)),
            ],
        )
        result = router.route_all()
        # Isolated nets prefer CORE (zero trim overlay).
        assert all(c is Color.CORE for c in router.colorings[0].values())
        assert result.overlay_nm == 0


class TestDuCandidatePricing:
    def test_prefers_cheap_candidate_pair(self):
        src = Pin.multi((Point(2, 5), Point(2, 9)))
        dst = Pin.multi((Point(20, 9), Point(20, 15)))
        router = build(DuTrimRouter, [Net(0, "m", src, dst)])
        result = router.route_all()
        assert result.routes[0].wirelength == 18  # straight pair chosen

    def test_budget_counts_down_between_nets(self):
        nets = [
            Net(i, f"n{i}", Pin.at(2, 3 + 2 * i), Pin.at(20, 3 + 2 * i))
            for i in range(4)
        ]
        router = build(DuTrimRouter, nets, time_budget_s=1e-9)
        result = router.route_all()
        assert result.routability == 0.0

    def test_rollback_leaves_no_residue(self):
        src = Pin.multi((Point(2, 5), Point(2, 9)))
        dst = Pin.multi((Point(20, 9), Point(20, 15)))
        router = build(DuTrimRouter, [Net(0, "m", src, dst)])
        router.route_all()
        # After routing, only the committed path and reserved pins occupy
        # the grid: every probed-and-rolled-back candidate was released.
        owned = list(router.grid.cells_of_net(0))
        route = router.detector.shapes_of(0)
        assert owned  # committed cells exist
        assert route  # detector holds only the final shapes

"""Behavioural tests of the three baseline routers."""

import pytest

from repro.baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter


def simple_nets(n=4, pitch=1):
    return [
        Net(i, f"n{i}", Pin.at(2, 4 + i * pitch), Pin.at(22, 4 + i * pitch))
        for i in range(n)
    ]


def route(router_cls, nets, size=30, **kw):
    grid = RoutingGrid(size, size)
    return router_cls(grid, Netlist(nets), **kw).route_all()


class TestGaoPan:
    def test_routes_simple_nets(self):
        result = route(GaoPanTrimRouter, simple_nets())
        assert result.routability == 1.0

    def test_second_patterns_overlay_without_assists(self):
        result = route(GaoPanTrimRouter, simple_nets())
        # At least one net is SECOND-colored with exposed flanks.
        assert result.overlay_nm > 0

    def test_frozen_colors_lose_to_sandwiches(self):
        # Three parallel adjacent wires routed in an order that freezes
        # the outer two to different colors leaves the middle stuck: the
        # visible-conflict check rejects it (lower routability), which is
        # the published failure mode.
        nets = [
            Net(0, "top", Pin.at(2, 6), Pin.at(22, 6)),
            Net(1, "bot", Pin.at(2, 4), Pin.at(22, 4)),
            Net(2, "mid", Pin.at(2, 5), Pin.at(22, 5)),
        ]
        ours = route(SadpRouter, nets)
        theirs = route(GaoPanTrimRouter, nets)
        assert ours.routability >= theirs.routability

    def test_conflicts_counted_by_complete_model(self):
        # Tip-abutting same-color wires are invisible to [11]'s model but
        # the evaluation counts them.
        nets = [
            Net(0, "a", Pin.at(2, 5), Pin.at(10, 5)),
            Net(1, "b", Pin.at(11, 5), Pin.at(20, 5)),
        ]
        result = route(GaoPanTrimRouter, nets)
        if result.routability == 1.0:
            # Both colors equal -> hidden 1-b trim conflict surfaces.
            assert result.cut_conflicts >= 0  # evaluated, not crashed


class TestCutNoMerge:
    def test_routes_simple_nets(self):
        result = route(CutNoMergeRouter, simple_nets())
        assert result.routability == 1.0

    def test_tip_abutment_rejected(self):
        # [16] cannot merge: a net whose only route abuts another net's
        # tip is ripped up / fails rather than committed cleanly.
        nets = [
            Net(0, "a", Pin.at(2, 5), Pin.at(10, 5)),
            Net(1, "b", Pin.at(11, 5), Pin.at(20, 5)),
        ]
        result = route(CutNoMergeRouter, nets)
        # Either net 1 detoured (extra wirelength/vias) or failed.
        route1 = result.routes[1]
        if route1.success:
            assert route1.wirelength > 9 or route1.via_count > 0

    def test_ours_beats_it_on_overlay(self):
        nets = simple_nets(6)
        ours = route(SadpRouter, nets)
        theirs = route(CutNoMergeRouter, nets)
        assert ours.overlay_units <= theirs.overlay_units
        assert ours.cut_conflicts == 0


class TestDuTrim:
    def test_multi_candidate_selection(self):
        src = Pin.multi((Point(2, 5), Point(2, 15)))
        dst = Pin.multi((Point(20, 15), Point(20, 25)))
        result = route(DuTrimRouter, [Net(0, "m", src, dst)])
        assert result.routability == 1.0
        assert result.routes[0].wirelength == 18  # picked the aligned pair

    def test_time_budget_aborts(self):
        nets = [
            Net(
                i,
                f"n{i}",
                Pin.multi((Point(2, 3 + 2 * i), Point(3, 3 + 2 * i))),
                Pin.multi((Point(22, 3 + 2 * i), Point(23, 3 + 2 * i))),
            )
            for i in range(8)
        ]
        result = route(DuTrimRouter, nets, time_budget_s=0.0)
        assert result.routability == 0.0  # budget exhausted immediately

    def test_slower_than_ours_per_candidate_blowup(self):
        nets = [
            Net(
                i,
                f"n{i}",
                Pin.multi((Point(2, 3 + 2 * i), Point(3, 3 + 2 * i), Point(4, 3 + 2 * i))),
                Pin.multi((Point(22, 3 + 2 * i), Point(23, 3 + 2 * i), Point(24, 3 + 2 * i))),
            )
            for i in range(6)
        ]
        ours = route(SadpRouter, nets)
        theirs = route(DuTrimRouter, nets)
        assert theirs.cpu_seconds > ours.cpu_seconds

#!/usr/bin/env python3
"""Quickstart: route a small netlist with the overlay-aware SADP router.

Builds a 40x40-track, three-layer grid at the paper's 10 nm-node rules,
routes a handful of two-pin nets, and prints the routing metrics, the
per-layer mask-color assignment, and an ASCII view of layer M1.

Run:  python examples/quickstart.py
"""

from repro import Net, Netlist, Pin, RoutingGrid, SadpRouter
from repro.viz import render_layer


def main() -> None:
    grid = RoutingGrid(width=40, height=40)

    nets = Netlist(
        [
            Net(0, "clk", Pin.at(2, 10), Pin.at(30, 10)),
            Net(1, "d0", Pin.at(2, 11), Pin.at(30, 11)),
            Net(2, "d1", Pin.at(2, 12), Pin.at(30, 12)),
            Net(3, "q0", Pin.at(5, 20), Pin.at(25, 32)),
            Net(4, "q1", Pin.at(8, 25), Pin.at(33, 18)),
            Net(5, "en", Pin.at(31, 10), Pin.at(38, 10)),  # abuts clk: merge+cut
        ]
    )

    router = SadpRouter(grid, nets)
    result = router.route_all()

    print("== routing result ==")
    print(result.summary())
    print()
    print("== per-net routes ==")
    for net in nets:
        route = result.routes[net.net_id]
        status = "ok " if route.success else "FAIL"
        print(
            f"  {net.name:4s} [{status}] wl={route.wirelength:3d} "
            f"vias={route.via_count} ripups={route.ripups}"
        )
    print()
    print("== mask colors (layer M1) ==")
    for net in nets:
        color = result.colorings[0].get(net.net_id)
        label = {None: "-", }.get(color, getattr(color, "value", "-"))
        print(f"  {net.name:4s} -> {label}")
    print()
    print("== layer M1 (C = core, s = second) ==")
    print(render_layer(grid, 0, result.colorings[0]))

    # The three parallel nets alternate colors (type 1-a rule), and 'en',
    # abutting 'clk' tip-to-tip, shares its color: the merge + cut
    # technique in action.
    assert result.cut_conflicts == 0


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Head-to-head: the proposed router vs all three baselines (Tables III/IV).

Generates one scaled Test1 instance (fixed pins) and one scaled Test6
instance (multiple pin candidate locations), routes each with every
applicable router, and prints the comparison rows the paper reports.

Run:  python examples/baseline_faceoff.py           # quick, scaled
      REPRO_SCALE=0.35 python examples/baseline_faceoff.py   # bigger
"""

import os

from repro.baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
from repro.bench import (
    FIXED_PIN_BENCHMARKS,
    MULTI_PIN_BENCHMARKS,
    run_baseline,
    run_proposed,
    rows_to_table,
)
from repro.bench.runner import comparison_summary


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.2"))

    fixed = FIXED_PIN_BENCHMARKS[0]
    print(f"routing {fixed.name} at scale {scale} ...")
    ours = run_proposed(fixed, scale=scale)
    gao = run_baseline(GaoPanTrimRouter, "gao-pan[11]", fixed, scale=scale)
    cut16 = run_baseline(CutNoMergeRouter, "cut[16]", fixed, scale=scale)
    print()
    print(rows_to_table([ours, gao, cut16], caption="fixed-pin face-off (Table III shape)"))
    print(comparison_summary([ours], [gao]))
    print(comparison_summary([ours], [cut16]))
    print()

    multi = MULTI_PIN_BENCHMARKS[0]
    print(f"routing {multi.name} at scale {scale} ...")
    ours_m = run_proposed(multi, scale=scale)
    du = run_baseline(DuTrimRouter, "du[10]", multi, scale=scale, time_budget_s=300.0)
    print()
    print(rows_to_table([ours_m, du], caption="multi-candidate face-off (Table IV shape)"))
    print(comparison_summary([ours_m], [du]))

    assert ours.conflicts == 0 and ours_m.conflicts == 0


if __name__ == "__main__":
    main()

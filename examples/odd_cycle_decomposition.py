#!/usr/bin/env python3
"""The paper's flagship scenario: decomposing an odd cycle with merge + cut.

Three wires form an odd constraint cycle: A and B run on adjacent tracks
(type 1-a: must differ), B and A' interact the same way, and A abuts A'
tip-to-tip (type 1-b: must match). A trim-process flow cannot two-color
this; the cut process merges the abutting pair and separates it with a
cut pattern (Fig. 2 / Fig. 21 of the paper).

The script routes the clip, shows the constraint-graph reasoning, then
runs the *physical* bitmap decomposition to prove the result manufactures
with zero hard overlay, and writes an SVG of the synthesized masks.

Run:  python examples/odd_cycle_decomposition.py
"""

from repro import Net, Netlist, Pin, RoutingGrid, SadpRouter
from repro.decompose import (
    routing_to_targets,
    synthesize_masks,
    verify_decomposition,
)
from repro.viz import render_layer, render_masks_svg


def main() -> None:
    grid = RoutingGrid(26, 26)
    nets = Netlist(
        [
            Net(0, "A", Pin.at(2, 10), Pin.at(12, 10)),
            Net(1, "B", Pin.at(2, 11), Pin.at(12, 11)),
            Net(2, "A'", Pin.at(13, 10), Pin.at(22, 10)),
        ]
    )
    router = SadpRouter(grid, nets)
    result = router.route_all()
    print("== routed clip ==")
    print(result.summary())
    print(render_layer(grid, 0, result.colorings[0]))
    print()

    graph = router.graphs[0]
    print("== overlay constraint graph (layer M1) ==")
    for edge in graph.edges:
        print(f"  net{edge.u} -- net{edge.v}: scenario {edge.scenario.value} ({edge.kind.value})")
    print(
        "  -> the 1-a/1-a/1-b triangle is an odd cycle for plain two-coloring;"
    )
    print("     the 1-b edge demands *equal* colors, so it is satisfiable:")
    for net in nets:
        color = result.colorings[0][net.net_id]
        print(f"     {net.name:2s} = {color.value}")
    print()

    targets = routing_to_targets(grid, result, 0)
    masks = synthesize_masks(targets, grid.rules)
    report = verify_decomposition(masks)
    print("== physical decomposition (bitmap engine) ==")
    print(f"  prints correctly   : {report.prints_correctly}")
    print(f"  side overlay       : {report.overlay.side_overlay_nm} nm")
    print(f"  tip overlay        : {report.overlay.tip_overlay_nm} nm (non-critical)")
    print(f"  hard overlays      : {report.overlay.hard_overlay_count}")
    print(f"  cut conflicts      : {len(report.cut_conflicts)}")
    assert report.ok

    out = render_masks_svg(masks, "odd_cycle_masks.svg")
    print(f"\nmask rendering written to {out}")


if __name__ == "__main__":
    main()

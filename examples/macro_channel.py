#!/usr/bin/env python3
"""Routing around macros with multi-pin nets — the obstacle extension.

Builds a die with two macro blockages forming a channel, routes a mix of
two-pin and three-pin (tapped) nets through it, and exports the decomposed
M1 masks as both SVG and GDSII — the full flow a physical-design user
would run.

Run:  python examples/macro_channel.py [output_dir]
"""

import sys
from pathlib import Path

from repro import Net, Netlist, Pin, Rect, RoutingGrid, SadpRouter
from repro.analysis import analyze
from repro.decompose import (
    export_masks_gds,
    routing_to_targets,
    synthesize_masks,
    verify_decomposition,
)
from repro.viz import render_layer, render_masks_svg


def build_grid() -> RoutingGrid:
    grid = RoutingGrid(36, 36)
    # Two macros with a 6-track channel between them.
    for layer in range(grid.num_layers):
        grid.block(layer, Rect(10, 4, 26, 15))
        grid.block(layer, Rect(10, 21, 26, 32))
    return grid


def build_netlist() -> Netlist:
    return Netlist(
        [
            # Bus through the channel.
            Net(0, "ch0", Pin.at(2, 17), Pin.at(33, 17)),
            Net(1, "ch1", Pin.at(2, 18), Pin.at(33, 18)),
            Net(2, "ch2", Pin.at(2, 19), Pin.at(33, 19)),
            # A clock-ish 3-pin net tapping both macro edges.
            Net(3, "clk", Pin.at(4, 2), Pin.at(32, 2), taps=(Pin.at(18, 16),)),
            # Nets that must route around the macros.
            Net(4, "n4", Pin.at(4, 8), Pin.at(32, 8)),
            Net(5, "n5", Pin.at(4, 28), Pin.at(32, 28)),
        ]
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("macro_channel_out")
    out_dir.mkdir(exist_ok=True)

    grid = build_grid()
    router = SadpRouter(grid, build_netlist())
    result = router.route_all()

    print(result.summary())
    print()
    print(analyze(router, result).to_text())
    print()
    print("== layer M1 (C/s = colors, # = macro) ==")
    print(render_layer(grid, 0, result.colorings[0]))

    assert result.cut_conflicts == 0

    targets = routing_to_targets(grid, result, 0)
    masks = synthesize_masks(targets, grid.rules)
    report = verify_decomposition(masks)
    print(f"\nphysical check: prints={report.prints_correctly}, "
          f"hard overlays={report.overlay.hard_overlay_count}")

    svg = render_masks_svg(masks, out_dir / "m1_masks.svg")
    gds = export_masks_gds(masks, out_dir / "m1_masks.gds")
    print(f"artifacts: {svg}, {gds}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The appendix, rendered: all 11 scenarios x 4 color pairs (Figs. 24-34).

For every potential overlay scenario and color assignment, synthesises
the physical masks of the canonical two-pattern clip and writes an SVG —
44 figures mirroring the paper's appendix enumeration — plus an index
file summarising the measured side overlay of each cell against the coded
Table II value.

Run:  python examples/scenario_atlas.py [output_dir]
"""

import sys
from pathlib import Path

from repro.color import ALL_PAIRS
from repro.core import HARD, SCENARIO_RULES, ScenarioType
from repro.decompose import scenario_clip, synthesize_masks, verify_decomposition
from repro.rules import DesignRules
from repro.viz import render_masks_svg


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("scenario_atlas")
    out_dir.mkdir(exist_ok=True)
    rules = DesignRules()

    index = [
        "Scenario atlas — appendix enumeration (Figs. 24-34)",
        f"{'cell':12s} {'coded':>6s} {'measured':>9s}  figure",
        "-" * 50,
    ]
    for stype in ScenarioType:
        rule = SCENARIO_RULES[stype]
        for pair in ALL_PAIRS:
            clip = scenario_clip(stype, pair, rules)
            masks = synthesize_masks(clip, rules)
            report = verify_decomposition(masks)
            name = f"{stype.value}_{pair.name}.svg"
            render_masks_svg(masks, out_dir / name)
            coded = rule.cost[pair]
            coded_text = "hard" if coded == HARD else f"{coded:.0f}u"
            measured = report.overlay.side_overlay_nm / rules.w_line
            flag = "" if report.prints_correctly else " (!)"
            index.append(
                f"{stype.value + ' ' + pair.name:12s} {coded_text:>6s} "
                f"{measured:8.1f}u{flag}  {name}"
            )

    text = "\n".join(index)
    (out_dir / "index.txt").write_text(text + "\n")
    print(text)
    print(f"\n44 SVGs written to {out_dir}/")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Color flipping in action (Section III-C).

Part 1 crafts the situation where greedy route-time coloring errs: two
short nets route first and both default to CORE; a third net then abuts
one of them tip-to-tip (type 1-b: colors must match) while passing
diagonally by the other (type 3-a: CC costs one unit of side overlay).
With colors frozen, the unit of overlay is locked in; the flipping pass
recolors the free neighbour and removes it.

Part 2 demonstrates Theorem 4 directly: the flipping-graph DP on the
final constraint graph matches exhaustive enumeration.

Run:  python examples/overlay_minimization.py
"""

from repro import Net, Netlist, Pin, RoutingGrid, SadpRouter
from repro.color import Color
from repro.core.color_flip import brute_force_coloring, flip_colors


def crafted_netlist() -> Netlist:
    """Trap for greedy coloring (routing order is shortest-first).

    * ``free`` : short wire at (2..6, 10); isolated when routed -> CORE.
    * ``anchor``: short wire at (14..18, 11); isolated when routed -> CORE.
    * ``late`` : wire at (8..13, 11): abuts ``anchor`` tip-to-tip
      (type 1-b, same color forced -> CORE) and runs diagonally past
      ``free`` (type 3-a: CC costs one unit).
    """
    return Netlist(
        [
            Net(0, "free", Pin.at(2, 10), Pin.at(6, 10)),
            Net(1, "anchor", Pin.at(14, 11), Pin.at(18, 11)),
            Net(2, "late", Pin.at(7, 11), Pin.at(13, 11)),
        ]
    )


def main() -> None:
    frozen = SadpRouter(
        RoutingGrid(24, 24), crafted_netlist(), enable_flipping=False
    ).route_all()
    flipped = SadpRouter(RoutingGrid(24, 24), crafted_netlist()).route_all()

    print("== crafted clip, colors frozen at route time (like [11]/[16]) ==")
    print(f"  {frozen.summary()}")
    print(f"  colors: { {n: c.value for n, c in sorted(frozen.colorings[0].items())} }")
    print("== same clip, with linear-time color flipping ==")
    print(f"  {flipped.summary()}")
    print(f"  colors: { {n: c.value for n, c in sorted(flipped.colorings[0].items())} }")
    saved = frozen.overlay_units - flipped.overlay_units
    print(f"\nflipping saved {saved:.0f} unit(s) of side overlay\n")
    assert flipped.overlay_units <= frozen.overlay_units

    # Part 2: the DP is optimal on the committed constraint graph.
    router = SadpRouter(RoutingGrid(24, 24), crafted_netlist())
    router.route_all()
    graph = router.graphs[0]
    component = max(graph.components(), key=len)
    ours = flip_colors(graph, scope=component)
    _, best = brute_force_coloring(graph, sorted(component))
    total = sum(
        e.dp_cost(ours.get(e.u, Color.CORE), ours.get(e.v, Color.CORE))
        for e in graph.edges_within(component)
    )
    print("== flipping-graph DP vs exhaustive enumeration (Theorem 4) ==")
    print(f"  component {sorted(component)}: DP cost {total:.0f}, brute force {best:.0f}")
    assert total == best


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A gallery of SADP decompositions: the paper's concept figures, rendered.

Synthesises the mask stacks for the situations in Figs. 1-7 — cut vs trim
process, the merge technique, assist-core protection, and the overlay
scenarios — and writes one SVG per clip plus a text summary.

Run:  python examples/decomposition_gallery.py [output_dir]
"""

import sys
from pathlib import Path

from repro import Color, DesignRules, Rect
from repro.decompose import (
    TargetPattern,
    measure_overlays,
    synthesize_masks,
    synthesize_trim_masks,
    verify_decomposition,
)
from repro.decompose.trim import measure_trim_overlays
from repro.viz import render_masks_svg

RULES = DesignRules()


def hwire(net, xlo, xhi, yc, color):
    return TargetPattern.wire(net, Rect(xlo, yc - 10, xhi, yc + 10), color)


GALLERY = {
    # Fig. 1(a)-(b): three-wire target, cut-process decomposition.
    "fig1_cut_process": [
        hwire(0, 0, 400, 0, Color.CORE),
        hwire(1, 0, 400, 40, Color.SECOND),
        hwire(2, 0, 400, 80, Color.CORE),
    ],
    # Fig. 2(c)-(d): tip-to-tip pair merged and separated by a cut.
    "fig2_merge_and_cut": [
        hwire(0, 0, 190, 0, Color.CORE),
        hwire(1, 210, 400, 0, Color.CORE),
    ],
    # Fig. 4: assist cores protecting a lone second pattern.
    "fig4_assist_cores": [hwire(0, 0, 400, 0, Color.SECOND)],
    # Fig. 7(c): type 2-a mis-colored -> assist merges with the core.
    "fig7_assist_merge_overlay": [
        hwire(0, 0, 400, 0, Color.CORE),
        hwire(1, 0, 400, 80, Color.SECOND),
    ],
    # Fig. 7(e): type 3-a CC -> one unit of side overlay at the corner.
    "fig7_corner_merge": [
        hwire(0, 0, 390, 0, Color.CORE),
        hwire(1, 410, 800, 40, Color.CORE),
    ],
}


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("gallery")
    out_dir.mkdir(exist_ok=True)

    lines = ["SADP decomposition gallery", "=" * 60]
    for name, targets in GALLERY.items():
        masks = synthesize_masks(targets, RULES)
        report = verify_decomposition(masks)
        svg = render_masks_svg(masks, out_dir / f"{name}.svg")
        lines.append(
            f"{name:28s} side={report.overlay.side_overlay_nm:4d}nm "
            f"tip={report.overlay.tip_overlay_nm:4d}nm "
            f"hard={report.overlay.hard_overlay_count} "
            f"prints={report.prints_correctly} -> {svg.name}"
        )

    # Fig. 1(c): the same three-wire target through the *trim* process.
    trim = synthesize_trim_masks(GALLERY["fig1_cut_process"], RULES)
    trim_overlay = measure_trim_overlays(trim)
    lines.append(
        f"{'fig1_trim_process':28s} side={trim_overlay.side_overlay_nm:4d}nm "
        f"(no assists) conflicts={trim.conflict_count}"
    )

    text = "\n".join(lines)
    print(text)
    (out_dir / "summary.txt").write_text(text + "\n")
    print(f"\nSVGs written to {out_dir}/")


if __name__ == "__main__":
    main()
